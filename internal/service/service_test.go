package service

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"positlab/internal/runner"
)

// testRegistry returns a registry with cheap deterministic specs plus
// the channels controlling the blocking one.
func testRegistry(t *testing.T) (reg *runner.Registry, started chan struct{}, release chan struct{}) {
	t.Helper()
	reg = runner.NewRegistry()
	started = make(chan struct{}, 64)
	release = make(chan struct{})
	mustReg := func(s runner.Spec) {
		t.Helper()
		if err := reg.Register(s); err != nil {
			t.Fatalf("Register(%s): %v", s.ID, err)
		}
	}
	mustReg(runner.Spec{ID: "demo", Title: "demo rows", Run: func(ctx context.Context, env *runner.Env) (*runner.Result, error) {
		return &runner.Result{
			Body:      "demo body\n",
			Metrics:   map[string]float64{"rows": 3},
			Artifacts: []runner.Artifact{{Name: "demo.csv", Kind: runner.CSV, Content: "a,b\n1,2\n"}},
		}, nil
	}})
	mustReg(runner.Spec{ID: "block", Title: "blocks until released", Run: func(ctx context.Context, env *runner.Env) (*runner.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
			return &runner.Result{Body: "released\n"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	mustReg(runner.Spec{ID: "boom", Title: "panics", Run: func(ctx context.Context, env *runner.Env) (*runner.Result, error) {
		panic("kaboom")
	}})
	return reg, started, release
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("close body: %v", err)
	}
	return strings.TrimSuffix(string(b), "\n")
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := get(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	body := readBody(t, resp)
	if !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("body = %q, want status ok", body)
	}
}

func TestConvertGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/convert",
		`{"from":"float64","to":"float32","values":[1,0.5,1e300]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	got := readBody(t, resp)
	want := `{"from":"Float64","to":"Float32","count":3,"results":[` +
		`{"in":1,"out":1,"bits":"0x3f800000","abs_err":0,"rel_err":0,"exact":true},` +
		`{"in":0.5,"out":0.5,"bits":"0x3f000000","abs_err":0,"rel_err":0,"exact":true},` +
		`{"in":1e+300,"out":null,"bits":"0x7f800000","abs_err":null,"rel_err":null,"exact":false}],` +
		`"stats":{"max_abs_err":0,"max_rel_err":0,"mean_rel_err":0,"exact":2}}`
	if got != want {
		t.Fatalf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}
}

func TestConvertRounding(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/convert",
		`{"from":"float64","to":"posit16es1","values":[3.141592653589793]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out convertResponse
	if err := json.Unmarshal([]byte(readBody(t, resp)), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	r := out.Results[0]
	if r.Exact {
		t.Fatal("pi converts exactly to posit16es1?")
	}
	if r.RelErr <= 0 || r.RelErr > 1e-3 {
		t.Fatalf("rel_err = %v, want small positive", r.RelErr)
	}
	if out.Stats.MaxRelErr != r.RelErr {
		t.Fatalf("stats.max_rel_err = %v, want %v", out.Stats.MaxRelErr, r.RelErr)
	}
}

func TestConvertBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 4, MaxBodyBytes: 256})
	cases := []struct {
		name, body string
		status     int
	}{
		{"malformed", `{"from":`, 400},
		{"unknown field", `{"fromm":"float64"}`, 400},
		{"unknown format", `{"from":"float99","to":"float32","values":[1]}`, 400},
		{"oversize batch", `{"from":"float64","to":"float32","values":[1,2,3,4,5]}`, 413},
		{"oversize body", `{"from":"float64","to":"float32","values":[` + strings.Repeat("1,", 200) + `1]}`, 413},
	}
	for _, c := range cases {
		resp := post(t, ts.URL+"/v1/convert", c.body)
		body := readBody(t, resp)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status = %d, want %d (body %s)", c.name, resp.StatusCode, c.status, body)
		}
		if !strings.Contains(body, `"error"`) {
			t.Errorf("%s: body %q has no error field", c.name, body)
		}
	}
}

func TestSolveCGNamedMatrix(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/solve",
		`{"matrix":"bcsstk01","solver":"cg","format":"posit32es2"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200: %s", resp.StatusCode, readBody(t, resp))
	}
	var out solveResponse
	if err := json.Unmarshal([]byte(readBody(t, resp)), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.N != 48 || out.Matrix != "bcsstk01" {
		t.Fatalf("matrix = %s n = %d, want bcsstk01 n=48", out.Matrix, out.N)
	}
	if out.Failed || out.Iterations == 0 {
		t.Fatalf("run: %+v, want progress", out)
	}
	if len(out.History) != out.Iterations {
		t.Fatalf("history has %d entries for %d iterations", len(out.History), out.Iterations)
	}
	if out.Ops.Total() == 0 {
		t.Fatal("ops not counted")
	}
}

func TestSolveCholeskyUpload(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mm := "%%MatrixMarket matrix coordinate real symmetric\n3 3 4\n1 1 4\n2 2 5\n3 3 6\n2 1 1\n"
	reqBody, err := json.Marshal(map[string]any{
		"matrix_market": mm, "solver": "cholesky", "format": "float32",
	})
	if err != nil {
		t.Fatal(err)
	}
	resp := post(t, ts.URL+"/v1/solve", string(reqBody))
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var out solveResponse
	if err := json.Unmarshal([]byte(readBody(t, resp)), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !out.Converged || out.Failed {
		t.Fatalf("run: %+v, want converged", out)
	}
	if be := float64(out.BackwardError); be <= 0 || be > 1e-6 {
		t.Fatalf("backward_error = %v, want small positive", be)
	}
}

func TestSolveIRHigham(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/solve",
		`{"matrix":"bcsstk01","solver":"ir","format":"posit16es1","higham":true}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var out solveResponse
	if err := json.Unmarshal([]byte(readBody(t, resp)), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Failed {
		t.Fatalf("factorization failed under Higham scaling: %+v", out)
	}
	if len(out.History) == 0 {
		t.Fatal("no backward-error history")
	}
}

func TestSolveBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxMatrixN: 2})
	asym := "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 4\n2 2 5\n1 2 1\n"
	big := "%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n1 1 4\n2 2 5\n3 3 6\n"
	cases := []struct {
		name, body string
	}{
		{"no matrix", `{"solver":"cg","format":"float32"}`},
		{"both matrices", `{"matrix":"bcsstk01","matrix_market":"x","solver":"cg","format":"float32"}`},
		{"unknown matrix", `{"matrix":"nope","solver":"cg","format":"float32"}`},
		{"unknown solver", `{"matrix":"bcsstk01","solver":"qr","format":"float32"}`},
		{"unknown format", `{"matrix":"bcsstk01","solver":"cg","format":"float99"}`},
		{"b length", `{"matrix":"bcsstk01","solver":"cg","format":"float32","b":[1,2]}`},
		{"asymmetric upload", mustJSON(t, map[string]any{"matrix_market": asym, "solver": "cg", "format": "float32"})},
		{"oversize matrix", mustJSON(t, map[string]any{"matrix_market": big, "solver": "cg", "format": "float32"})},
	}
	for _, c := range cases {
		resp := post(t, ts.URL+"/v1/solve", c.body)
		body := readBody(t, resp)
		if resp.StatusCode != 400 {
			t.Errorf("%s: status = %d, want 400 (body %s)", c.name, resp.StatusCode, body)
		}
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestExperimentServedAndCached(t *testing.T) {
	reg, _, _ := testRegistry(t)
	cache, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Registry: reg, RunnerConfig: runner.Config{Cache: cache}})

	resp := get(t, ts.URL+"/v1/experiments/demo")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, readBody(t, resp))
	}
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", xc)
	}
	first := readBody(t, resp)
	if !strings.Contains(first, "demo body") || !strings.Contains(first, `"rows":3`) {
		t.Fatalf("body = %s", first)
	}
	if strings.Contains(first, "demo.csv") {
		t.Fatalf("artifacts served without ?artifacts=1: %s", first)
	}

	resp = get(t, ts.URL+"/v1/experiments/demo")
	if xc := resp.Header.Get("X-Cache"); xc != "hit" {
		t.Fatalf("second X-Cache = %q, want hit", xc)
	}
	if second := readBody(t, resp); second != first {
		t.Fatalf("cached response differs:\n%s\n%s", second, first)
	}
	if st := s.Cache().Stats(); st.Hits == 0 {
		t.Fatalf("cache stats %+v, want a hit", st)
	}

	resp = get(t, ts.URL+"/v1/experiments/demo?artifacts=1")
	if body := readBody(t, resp); !strings.Contains(body, "demo.csv") {
		t.Fatalf("artifacts missing: %s", body)
	}
}

func TestExperimentUnknown404(t *testing.T) {
	reg, _, _ := testRegistry(t)
	_, ts := newTestServer(t, Config{Registry: reg})
	resp := get(t, ts.URL+"/v1/experiments/nope")
	body := readBody(t, resp)
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d, want 404 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, "demo") {
		t.Fatalf("404 body should list known experiments: %s", body)
	}
}

func TestExperimentPanicIs500(t *testing.T) {
	reg, _, _ := testRegistry(t)
	_, ts := newTestServer(t, Config{Registry: reg})
	resp := get(t, ts.URL+"/v1/experiments/boom")
	body := readBody(t, resp)
	if resp.StatusCode != 500 {
		t.Fatalf("status = %d, want 500 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, "panic") {
		t.Fatalf("body = %s, want panic message", body)
	}
	// The server survives.
	if resp := get(t, ts.URL+"/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz after panic = %d", resp.StatusCode)
	} else {
		_ = readBody(t, resp)
	}
}

func TestSaturation429(t *testing.T) {
	reg, started, release := testRegistry(t)
	defer close(release)
	_, ts := newTestServer(t, Config{Registry: reg, MaxInflight: 1})

	done := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/experiments/block")
		if err != nil {
			done <- -1
			return
		}
		defer func() { _ = resp.Body.Close() }()
		done <- resp.StatusCode
	}()
	<-started // the blocking request is admitted and inside the spec

	resp := post(t, ts.URL+"/v1/convert", `{"from":"float64","to":"float32","values":[1]}`)
	body := readBody(t, resp)
	if resp.StatusCode != 429 {
		t.Fatalf("status = %d, want 429 (%s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want 1", ra)
	}
	// Health bypasses admission even when saturated.
	if resp := get(t, ts.URL+"/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz while saturated = %d", resp.StatusCode)
	} else {
		_ = readBody(t, resp)
	}

	release <- struct{}{}
	if code := <-done; code != 200 {
		t.Fatalf("blocking request finished with %d, want 200", code)
	}
}

func TestRequestTimeout504(t *testing.T) {
	reg, _, _ := testRegistry(t)
	_, ts := newTestServer(t, Config{Registry: reg, RequestTimeout: 50 * time.Millisecond})
	start := time.Now()
	resp := get(t, ts.URL+"/v1/experiments/block")
	body := readBody(t, resp)
	if resp.StatusCode != 504 {
		t.Fatalf("status = %d, want 504 (%s)", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v; cancellation did not propagate", elapsed)
	}
}

func TestGracefulDrain(t *testing.T) {
	reg, _, _ := testRegistry(t)
	s := New(Config{Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx, ln, 5*time.Second) }()

	url := "http://" + ln.Addr().String()
	resp := get(t, url+"/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	_ = readBody(t, resp)

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run returned %v, want nil on clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

func TestDebugMetrics(t *testing.T) {
	reg, _, _ := testRegistry(t)
	_, ts := newTestServer(t, Config{Registry: reg})
	for i := 0; i < 3; i++ {
		resp := post(t, ts.URL+"/v1/convert", `{"from":"float64","to":"posit16es1","values":[1,2,3]}`)
		_ = readBody(t, resp)
	}
	resp := get(t, ts.URL+"/debug/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal([]byte(readBody(t, resp)), &snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	rs, ok := snap.Routes["POST /v1/convert"]
	if !ok || rs.Count != 3 {
		t.Fatalf("routes = %+v, want 3 convert requests", snap.Routes)
	}
	if rs.Statuses["200"] != 3 {
		t.Fatalf("statuses = %+v", rs.Statuses)
	}
	if snap.Cache.Misses == 0 || snap.Cache.Hits == 0 {
		t.Fatalf("cache = %+v, want both misses and hits", snap.Cache)
	}
	if snap.OpsTotal != 0 {
		// Conversions count into Conv, not arithmetic ops.
		t.Fatalf("ops_total = %d, want 0 for pure conversions", snap.OpsTotal)
	}
	if snap.Ops.Conv == 0 {
		t.Fatalf("ops.Conv = 0, want conversions counted")
	}
}

func TestPprofGated(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp := get(t, off.URL+"/debug/pprof/cmdline")
	_ = readBody(t, resp)
	if resp.StatusCode != 404 {
		t.Fatalf("pprof disabled: status = %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{EnablePprof: true})
	resp = get(t, on.URL+"/debug/pprof/cmdline")
	_ = readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("pprof enabled: status = %d, want 200", resp.StatusCode)
	}
	resp = get(t, on.URL+"/debug/pprof/")
	body := readBody(t, resp)
	if resp.StatusCode != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status = %d, want 200 with profile listing", resp.StatusCode)
	}
}
