package service

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"positlab/internal/arith"
	"positlab/internal/jobs"
	"positlab/internal/solvers"
)

// This file is the HTTP surface of the durable job subsystem
// (internal/jobs) plus the executor that runs its jobs: a solve job is
// the async form of POST /v1/solve with solver checkpoints journaled
// at the configured cadence, and an experiment job is the async form
// of GET /v1/experiments/{name}. Submissions are validated before they
// are journaled, so a job that was accepted can only fail for runtime
// reasons, never for a malformed spec.

// jobSubmitRequest is the POST /v1/jobs body. Exactly one of Solve and
// Experiment must be set.
type jobSubmitRequest struct {
	Solve      *solveRequest      `json:"solve,omitempty"`
	Experiment *experimentJobSpec `json:"experiment,omitempty"`
	// Priority is "interactive" or "bulk" (default "bulk").
	// Interactive jobs are dequeued ahead of bulk ones.
	Priority string `json:"priority,omitempty"`
	// CheckpointEvery overrides the server's checkpoint cadence in
	// solver iterations for this job (0: server default; < 0: never).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// MaxRetries bounds transparent re-runs after transient failures.
	MaxRetries int `json:"max_retries,omitempty"`
	// MaxRuntimeMS caps one attempt's wall time (0: unlimited).
	MaxRuntimeMS int64 `json:"max_runtime_ms,omitempty"`
}

// experimentJobSpec names a registered experiment to run.
type experimentJobSpec struct {
	Name      string `json:"name"`
	Artifacts bool   `json:"artifacts,omitempty"`
}

// jobView is the API rendering of a jobs.Job.
type jobView struct {
	ID         string `json:"id"`
	Kind       string `json:"kind"`
	State      string `json:"state"`
	Priority   string `json:"priority"`
	Attempt    int    `json:"attempt,omitempty"`
	Retries    int    `json:"retries,omitempty"`
	Recoveries int    `json:"recoveries,omitempty"`
	// CheckpointIter is the iteration of the last durable checkpoint;
	// a recovered job resumes from here.
	CheckpointIter int    `json:"checkpoint_iter,omitempty"`
	SubmittedAt    string `json:"submitted_at"`
	StartedAt      string `json:"started_at,omitempty"`
	FinishedAt     string `json:"finished_at,omitempty"`
	Error          string `json:"error,omitempty"`
	// Progress is the live solver state of a running job: iterations
	// completed, current residual/backward error, and the tail of the
	// convergence history.
	Progress *jobProgress `json:"progress,omitempty"`
	// Result is the completed job's payload: a solveResponse for solve
	// jobs, an experimentResponse for experiment jobs.
	Result json.RawMessage `json:"result,omitempty"`
}

type jobProgress struct {
	Iterations int         `json:"iterations"`
	Residual   jsonFloat   `json:"residual"`
	Tail       []jsonFloat `json:"tail,omitempty"`
}

func ns3339(ns int64) string {
	if ns == 0 {
		return ""
	}
	return time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
}

func viewOf(j jobs.Job) jobView {
	v := jobView{
		ID:             j.ID,
		Kind:           j.Kind,
		State:          string(j.State),
		Priority:       string(j.Priority),
		Attempt:        j.Attempt,
		Retries:        j.Retries,
		Recoveries:     j.Recoveries,
		CheckpointIter: j.CheckpointIter,
		SubmittedAt:    ns3339(j.SubmittedNS),
		StartedAt:      ns3339(j.StartedNS),
		FinishedAt:     ns3339(j.FinishedNS),
		Error:          j.Error,
		Result:         j.Result,
	}
	if j.State == jobs.StateRunning && j.Progress.Iterations > 0 {
		v.Progress = &jobProgress{
			Iterations: j.Progress.Iterations,
			Residual:   jsonFloat(j.Progress.Residual),
			Tail:       jsonFloats(j.Progress.Tail),
		}
	}
	return v
}

// handleJobSubmit implements POST /v1/jobs: validate the spec, journal
// the job, and return 202 with its initial view. The solver runs on
// the worker pool; poll GET /v1/jobs/{id} (or long-poll with ?wait=)
// for completion.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobSubmitRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if (req.Solve == nil) == (req.Experiment == nil) {
		httpError(w, http.StatusBadRequest, "set exactly one of solve or experiment")
		return
	}
	pri, err := jobs.ParsePriority(req.Priority)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.MaxRetries < 0 || req.MaxRuntimeMS < 0 {
		httpError(w, http.StatusBadRequest, "max_retries and max_runtime_ms must be non-negative")
		return
	}
	qi, qb := s.jobPool.Store().QueueDepths()
	if qi+qb >= s.cfg.MaxQueuedJobs {
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("job queue is full (%d queued); retry later", qi+qb))
		return
	}

	every := req.CheckpointEvery
	switch {
	case every == 0:
		every = s.cfg.JobCheckpointEvery
	case every < 0:
		every = 0
	}

	var kind string
	var spec []byte
	switch {
	case req.Solve != nil:
		// Validate up front: a journaled job must be runnable.
		if _, serr := validateSolve(req.Solve); serr != nil {
			httpError(w, serr.status, serr.msg)
			return
		}
		if _, _, _, err := s.loadSystem(req.Solve); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		kind = jobKindSolve
		if spec, err = json.Marshal(req.Solve); err != nil {
			httpError(w, http.StatusInternalServerError, "encode spec: "+err.Error())
			return
		}
	default:
		if _, ok := s.cfg.Registry.Lookup(req.Experiment.Name); !ok {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown experiment %q", req.Experiment.Name))
			return
		}
		kind = jobKindExperiment
		if spec, err = json.Marshal(req.Experiment); err != nil {
			httpError(w, http.StatusInternalServerError, "encode spec: "+err.Error())
			return
		}
	}

	j, err := s.jobPool.Submit(kind, spec, jobs.SubmitOptions{
		Priority:        pri,
		MaxRetries:      req.MaxRetries,
		CheckpointEvery: every,
		MaxRuntime:      time.Duration(req.MaxRuntimeMS) * time.Millisecond,
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "submit: "+err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, viewOf(j))
}

// handleJobGet implements GET /v1/jobs/{id}. With ?wait=<duration> it
// long-polls: the response is delayed until the job settles or the
// wait (capped by the request timeout) expires, whichever is first,
// and carries the job's state either way.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	store := s.jobPool.Store()
	if waitSpec := r.URL.Query().Get("wait"); waitSpec != "" {
		d, err := time.ParseDuration(waitSpec)
		if err != nil {
			httpError(w, http.StatusBadRequest, "wait: "+err.Error())
			return
		}
		ctx := r.Context()
		if d > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		j, err := store.Wait(ctx, id)
		if err == jobs.ErrUnknownJob {
			httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
			return
		}
		// A wait that timed out still reports the live state.
		writeJSON(w, http.StatusOK, viewOf(j))
		return
	}
	j, ok := store.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, viewOf(j))
}

// handleJobList implements GET /v1/jobs with ?state=, ?kind=,
// ?priority= and ?limit= filters, newest first.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := jobs.Filter{
		State: jobs.State(q.Get("state")),
		Kind:  q.Get("kind"),
	}
	if p := q.Get("priority"); p != "" {
		pri, err := jobs.ParsePriority(p)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		f.Priority = pri
	}
	if l := q.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		f.Limit = n
	}
	list := s.jobPool.Store().List(f)
	views := make([]jobView, len(list))
	for i, j := range list {
		views[i] = viewOf(j)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views, "count": len(views)})
}

// handleJobCancel implements DELETE /v1/jobs/{id}: a queued job is
// settled immediately, a running one is interrupted (its context is
// canceled) and settles shortly after.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch err := s.jobPool.Cancel(id); err {
	case nil:
		j, _ := s.jobPool.Store().Get(id)
		writeJSON(w, http.StatusOK, viewOf(j))
	case jobs.ErrUnknownJob:
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
	case jobs.ErrFinished:
		httpError(w, http.StatusConflict, fmt.Sprintf("job %q already finished", id))
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// --- executor ---

const (
	jobKindSolve      = "solve"
	jobKindExperiment = "experiment"
)

// jobExecutor runs journaled jobs against the server's solver and
// experiment stack. It is the pool's Runner.
type jobExecutor struct {
	s *Server
}

func (e *jobExecutor) Run(ctx context.Context, job jobs.Job, sink jobs.Sink) ([]byte, error) {
	switch job.Kind {
	case jobKindSolve:
		return e.runSolveJob(ctx, job, sink)
	case jobKindExperiment:
		return e.runExperimentJob(ctx, job)
	default:
		return nil, jobs.Permanent(fmt.Errorf("unknown job kind %q", job.Kind))
	}
}

// runSolveJob executes a solve-kind job: decode the spec, restore the
// solver checkpoint if this attempt is a resume, and run with
// checkpoint emission wired to the job journal.
func (e *jobExecutor) runSolveJob(ctx context.Context, job jobs.Job, sink jobs.Sink) ([]byte, error) {
	var req solveRequest
	if err := json.Unmarshal(job.Spec, &req); err != nil {
		return nil, jobs.Permanent(fmt.Errorf("decode solve spec: %w", err))
	}
	ck := solveCheckpointing{}
	if job.CheckpointEvery > 0 {
		ck.cg.Every = job.CheckpointEvery
		ck.cg.OnCheckpoint = func(c *solvers.CGCheckpoint) error {
			sink.Progress(progressOf(c.Iter, c.History))
			wire := cgWire(c)
			data, err := json.Marshal(wire)
			if err != nil {
				return fmt.Errorf("encode checkpoint: %w", err)
			}
			return sink.Checkpoint(c.Iter, data)
		}
		ck.ir.Every = job.CheckpointEvery
		ck.ir.OnCheckpoint = func(c *solvers.IRCheckpoint) error {
			sink.Progress(progressOf(c.Iter, c.History))
			data, err := json.Marshal(irWire(c))
			if err != nil {
				return fmt.Errorf("encode checkpoint: %w", err)
			}
			return sink.Checkpoint(c.Iter, data)
		}
	}
	if len(job.Checkpoint) > 0 {
		var wire solveCkptWire
		if err := json.Unmarshal(job.Checkpoint, &wire); err != nil {
			return nil, jobs.Permanent(fmt.Errorf("decode checkpoint: %w", err))
		}
		switch wire.Solver {
		case "cg":
			ck.cg.Resume = wire.cgCheckpoint()
		case "ir":
			ck.ir.Resume = wire.irCheckpoint()
		default:
			return nil, jobs.Permanent(fmt.Errorf("checkpoint for unknown solver %q", wire.Solver))
		}
	}

	resp, serr := e.s.runSolve(ctx, &req, ck)
	if serr != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			// Cancellation/drain/deadline: hand the raw context error to
			// the pool so its outcome policy applies.
			return nil, ctxErr
		}
		if serr.status >= 400 && serr.status < 500 {
			// A spec problem that slipped past submission validation
			// (e.g. a matrix removed from the suite): retrying cannot
			// help.
			return nil, jobs.Permanent(serr)
		}
		return nil, serr
	}
	return json.Marshal(resp)
}

// runExperimentJob executes an experiment-kind job through the runner
// (and therefore its on-disk cache), mirroring GET /v1/experiments.
func (e *jobExecutor) runExperimentJob(ctx context.Context, job jobs.Job) ([]byte, error) {
	var spec experimentJobSpec
	if err := json.Unmarshal(job.Spec, &spec); err != nil {
		return nil, jobs.Permanent(fmt.Errorf("decode experiment spec: %w", err))
	}
	reg := e.s.cfg.Registry
	rspec, ok := reg.Lookup(spec.Name)
	if !ok {
		return nil, jobs.Permanent(fmt.Errorf("unknown experiment %q", spec.Name))
	}
	res, _, err := e.s.exec.Execute(ctx, spec.Name)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	resp := experimentResponse{ID: spec.Name, Title: rspec.Title, Body: res.Body}
	if len(res.Metrics) > 0 {
		resp.Metrics = make(map[string]jsonFloat, len(res.Metrics))
		for k, v := range res.Metrics {
			resp.Metrics[k] = jsonFloat(v)
		}
	}
	if spec.Artifacts {
		resp.Artifacts = res.Artifacts
	}
	return json.Marshal(resp)
}

func progressOf(iter int, history []float64) jobs.Progress {
	p := jobs.Progress{Iterations: iter}
	if n := len(history); n > 0 {
		p.Residual = history[n-1]
		tail := history
		if n > 8 {
			tail = history[n-8:]
		}
		p.Tail = append([]float64(nil), tail...)
	}
	return p
}

// --- checkpoint wire format ---

// u64vec is a []uint64 that marshals as base64 of its little-endian
// bytes. Solver state is exact bit patterns (format numbers, float64
// bits); base64 keeps the journal compact and avoids any JSON number
// round-trip concerns for values like NaN payloads.
type u64vec []uint64

func (v u64vec) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], x)
	}
	return json.Marshal(base64.StdEncoding.EncodeToString(buf))
}

func (v *u64vec) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return err
	}
	if len(buf)%8 != 0 {
		return fmt.Errorf("u64vec: %d bytes is not a multiple of 8", len(buf))
	}
	out := make(u64vec, len(buf)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	*v = out
	return nil
}

// solveCkptWire is the journaled form of a solver checkpoint. CG uses
// X/R/P/RR (format bit patterns); IR uses only X (float64 bits). Hist
// is the reporting history as float64 bits in both cases.
type solveCkptWire struct {
	Solver string `json:"solver"`
	Iter   int    `json:"iter"`
	X      u64vec `json:"x"`
	R      u64vec `json:"r,omitempty"`
	P      u64vec `json:"p,omitempty"`
	RR     uint64 `json:"rr,omitempty"`
	Hist   u64vec `json:"hist,omitempty"`
}

func numsToU64(v []arith.Num) u64vec {
	out := make(u64vec, len(v))
	for i, x := range v {
		out[i] = uint64(x)
	}
	return out
}

func u64ToNums(v u64vec) []arith.Num {
	out := make([]arith.Num, len(v))
	for i, x := range v {
		out[i] = arith.Num(x)
	}
	return out
}

func floatsToU64(v []float64) u64vec {
	out := make(u64vec, len(v))
	for i, x := range v {
		out[i] = math.Float64bits(x)
	}
	return out
}

func u64ToFloats(v u64vec) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = math.Float64frombits(x)
	}
	return out
}

func cgWire(c *solvers.CGCheckpoint) solveCkptWire {
	return solveCkptWire{
		Solver: "cg",
		Iter:   c.Iter,
		X:      numsToU64(c.X),
		R:      numsToU64(c.R),
		P:      numsToU64(c.P),
		RR:     uint64(c.RR),
		Hist:   floatsToU64(c.History),
	}
}

func irWire(c *solvers.IRCheckpoint) solveCkptWire {
	return solveCkptWire{
		Solver: "ir",
		Iter:   c.Iter,
		X:      floatsToU64(c.X),
		Hist:   floatsToU64(c.History),
	}
}

func (w *solveCkptWire) cgCheckpoint() *solvers.CGCheckpoint {
	return &solvers.CGCheckpoint{
		Iter:    w.Iter,
		X:       u64ToNums(w.X),
		R:       u64ToNums(w.R),
		P:       u64ToNums(w.P),
		RR:      arith.Num(w.RR),
		History: u64ToFloats(w.Hist),
	}
}

func (w *solveCkptWire) irCheckpoint() *solvers.IRCheckpoint {
	return &solvers.IRCheckpoint{
		Iter:    w.Iter,
		X:       u64ToFloats(w.X),
		History: u64ToFloats(w.Hist),
	}
}
