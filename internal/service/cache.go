package service

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// Cache is a bounded in-memory LRU over rendered response bytes with
// per-key singleflight: concurrent requests for the same key perform
// the computation exactly once, and every waiter receives the same
// byte slice. It fronts the runner's on-disk cache in the serving
// layer — a warm experiment response is served without touching disk,
// and a thundering herd on a cold key runs one solver pass, not N.
//
// Errors are never cached: a failed computation is surfaced to every
// in-flight waiter and then forgotten, so the next request retries.
type Cache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; elements hold *cacheEntry
	entries  map[string]*list.Element

	hits, misses, shared, evictions uint64
}

// cacheEntry is one key's slot. ready is closed by the computing
// goroutine after val/err are set; waiters hold the entry pointer, so
// an eviction mid-flight cannot strand them.
type cacheEntry struct {
	key   string
	ready chan struct{}
	val   []byte
	err   error
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	// Hits: requests served from a completed entry.
	Hits uint64 `json:"hits"`
	// Misses: requests that started a computation.
	Misses uint64 `json:"misses"`
	// Shared: requests that joined an in-flight computation
	// (the singleflight deduplications).
	Shared uint64 `json:"shared"`
	// Evictions: completed entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
}

// HitRatio is (Hits+Shared) / (Hits+Shared+Misses), or 0 before any
// traffic.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Shared + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Shared) / float64(total)
}

// NewCache returns a cache bounded to capacity entries; capacity <= 0
// means 256.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 256
	}
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		entries:  map[string]*list.Element{},
	}
}

// Stats returns the current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Shared: c.shared, Evictions: c.evictions}
}

// Do returns the cached bytes for key, computing them via compute on a
// miss. The boolean reports whether the result came from the cache —
// either a completed entry (hit) or another request's in-flight
// computation (shared); the computing caller itself gets false. A
// panic inside compute is converted to an error. ctx bounds only the
// wait of sharing callers: the computation itself runs on the first
// caller's goroutine under that caller's own context.
func (c *Cache) Do(ctx context.Context, key string, compute func() ([]byte, error)) ([]byte, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.order.MoveToFront(el)
		select {
		case <-e.ready:
			c.hits++
			c.mu.Unlock()
			return e.val, true, e.err
		default:
		}
		c.shared++
		c.mu.Unlock()
		select {
		case <-e.ready:
			return e.val, true, e.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = c.order.PushFront(e)
	c.misses++
	c.evictLocked()
	c.mu.Unlock()

	val, err := safeCompute(compute)

	c.mu.Lock()
	e.val, e.err = val, err
	close(e.ready)
	if err != nil {
		// Never cache failures: drop the entry so the next request
		// retries (it may already have been evicted; Remove of a
		// different element for the same key must not clobber it).
		if el, ok := c.entries[key]; ok && el.Value.(*cacheEntry) == e {
			c.order.Remove(el)
			delete(c.entries, key)
		}
	}
	c.mu.Unlock()
	return val, false, err
}

// evictLocked drops least-recently-used completed entries beyond
// capacity. In-flight entries are skipped: their computing goroutine
// and waiters still reference them, and evicting work in progress
// would only duplicate it.
func (c *Cache) evictLocked() {
	for el := c.order.Back(); el != nil && c.order.Len() > c.capacity; {
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		select {
		case <-e.ready:
			c.order.Remove(el)
			delete(c.entries, e.key)
			c.evictions++
		default:
		}
		el = prev
	}
}

// safeCompute runs compute with panic recovery, so one bad request
// cannot take down the server and in-flight sharers see an error
// instead of hanging forever on a never-closed ready channel.
func safeCompute(compute func() ([]byte, error)) (val []byte, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("compute panicked: %v", p)
		}
	}()
	return compute()
}
