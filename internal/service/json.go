package service

import (
	"encoding/json"
	"math"
	"net/http"
)

// jsonFloat is a float64 that marshals non-finite values as null.
// encoding/json rejects NaN and ±Inf outright, but solver metrics
// legitimately produce them (a diverged backward error, an overflowed
// conversion), so every float the API returns goes through this type:
// the response stays valid JSON and a non-finite measurement is
// distinguishable from zero.
type jsonFloat float64

func (v jsonFloat) MarshalJSON() ([]byte, error) {
	f := float64(v)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(f)
}

// jsonFloats converts a measurement series for marshaling.
func jsonFloats(xs []float64) []jsonFloat {
	if xs == nil {
		return nil
	}
	out := make([]jsonFloat, len(xs))
	for i, x := range xs {
		out[i] = jsonFloat(x)
	}
	return out
}

// apiError is the uniform error body of every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON marshals v and writes it with the given status. A marshal
// failure (a programming error: every response type here marshals) is
// downgraded to a plain 500; a write failure means the client went
// away and there is nobody left to tell.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeBody(w, append(b, '\n'))
}

// writeBody writes pre-rendered bytes, dropping the error: at this
// point the status line is already committed, so the only write
// failure mode is a disconnected client.
func writeBody(w http.ResponseWriter, b []byte) {
	if _, err := w.Write(b); err != nil {
		_ = err // client disconnected mid-response; nothing to do
	}
}

// httpError writes the uniform error body.
func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, apiError{Error: msg})
}
