package service

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestDiagnoseEndpoint smokes POST /v1/diagnose end to end on a suite
// matrix: a shadowed CG run must return a well-formed report with
// non-empty telemetry, and a completed run must show up in the shadow
// gauges of /debug/metrics.
func TestDiagnoseEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/diagnose",
		`{"matrix":"bcsstk01","solver":"cg","format":"posit32es2","rescale":true,"sample_every":1,"include_csv":true}`)
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var rep struct {
		Matrix      string `json:"matrix"`
		Solver      string `json:"solver"`
		Format      string `json:"format"`
		N           int    `json:"n"`
		SampleEvery int    `json:"sample_every"`
		Iterations  int    `json:"iterations"`
		Trace       []struct {
			Iter int `json:"iter"`
		} `json:"trace"`
		Telemetry struct {
			TotalOps    uint64 `json:"total_ops"`
			MeasuredOps uint64 `json:"measured_ops"`
			Stats       []struct {
				Op      string `json:"op"`
				Count   uint64 `json:"count"`
				RelHist []struct {
					Log2  int    `json:"log2"`
					Count uint64 `json:"count"`
				} `json:"rel_hist"`
			} `json:"stats"`
		} `json:"telemetry"`
		TraceCSV string `json:"trace_csv"`
		StatsCSV string `json:"stats_csv"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("decode report: %v\n%s", err, body)
	}
	if rep.Matrix != "bcsstk01" || rep.Solver != "cg" || rep.N != 48 || rep.SampleEvery != 1 {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.Iterations == 0 || len(rep.Trace) == 0 {
		t.Fatalf("no solver progress in report: %+v", rep)
	}
	if rep.Telemetry.TotalOps == 0 || rep.Telemetry.MeasuredOps != rep.Telemetry.TotalOps {
		t.Fatalf("full sampling measured %d of %d ops", rep.Telemetry.MeasuredOps, rep.Telemetry.TotalOps)
	}
	if len(rep.Telemetry.Stats) == 0 {
		t.Fatal("empty telemetry stats")
	}
	hist := 0
	for _, s := range rep.Telemetry.Stats {
		hist += len(s.RelHist)
	}
	if hist == 0 {
		t.Fatal("all error histograms empty")
	}
	if !strings.HasPrefix(rep.TraceCSV, "iter,") || !strings.HasPrefix(rep.StatsCSV, "label,") {
		t.Fatalf("CSV artifacts missing: %q %q", rep.TraceCSV, rep.StatsCSV)
	}

	mresp := get(t, ts.URL+"/debug/metrics")
	mbody := readBody(t, mresp)
	var metrics struct {
		Shadow struct {
			Runs        uint64 `json:"runs"`
			ShadowedOps uint64 `json:"shadowed_ops"`
		} `json:"shadow"`
	}
	if err := json.Unmarshal([]byte(mbody), &metrics); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	if metrics.Shadow.Runs != 1 || metrics.Shadow.ShadowedOps != rep.Telemetry.TotalOps {
		t.Fatalf("shadow gauges: %+v, want 1 run / %d ops", metrics.Shadow, rep.Telemetry.TotalOps)
	}
}

// TestDiagnoseEndpointValidation covers the 400 paths.
func TestDiagnoseEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"unknown format": `{"matrix":"bcsstk01","solver":"cg","format":"posit99"}`,
		"unknown matrix": `{"matrix":"nope","solver":"cg","format":"posit16es1"}`,
		"unknown solver": `{"matrix":"bcsstk01","solver":"lu","format":"posit16es1"}`,
		"no system":      `{"solver":"cg","format":"posit16es1"}`,
	} {
		resp := post(t, ts.URL+"/v1/diagnose", body)
		if b := readBody(t, resp); resp.StatusCode != 400 {
			t.Errorf("%s: status = %d, want 400 (%s)", name, resp.StatusCode, b)
		}
	}
}
