package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"positlab/internal/arith"
)

// TestConvertConcurrentDeterministic hammers /v1/convert from many
// goroutines (run under -race in `make verify`): every response for
// the same payload must be byte-identical, and the LRU must absorb
// the repeats. A deterministic singleflight share is staged first by
// occupying the exact cache key the handler will use with a blocking
// compute, so the HTTP request is forced onto the dedup path and the
// Shared counter is provably exercised end-to-end.
func TestConvertConcurrentDeterministic(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	const payloadA = `{"from":"float64","to":"posit16es2","values":[1,2.5,3.141592653589793,1e9]}`
	const payloadB = `{"from":"float32","to":"posit32es2","values":[0.1,0.2,0.3]}`

	// Stage a guaranteed singleflight share on payloadA's key: the
	// leader below holds the key open; the HTTP request must join it
	// as a waiter and come back with X-Cache: hit and the leader's
	// bytes.
	from := arith.MustByName("float64")
	to := arith.MustByName("posit16es2")
	values := []float64{1, 2.5, 3.141592653589793, 1e9}
	key := convertKey(from, to, values)

	enter := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan []byte, 1)
	go func() {
		v, _, err := s.Cache().Do(context.Background(), key, func() ([]byte, error) {
			close(enter)
			<-release
			return json.Marshal(s.convert(from, to, values))
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		leaderDone <- v
	}()
	<-enter

	httpDone := make(chan string, 1)
	go func() {
		resp := post(t, ts.URL+"/v1/convert", payloadA)
		if xc := resp.Header.Get("X-Cache"); xc != "hit" {
			t.Errorf("staged share X-Cache = %q, want hit", xc)
		}
		httpDone <- readBody(t, resp)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.Cache().Stats().Shared == 0 {
		if time.Now().After(deadline) {
			t.Fatal("HTTP request never joined the in-flight compute")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	leaderBytes := <-leaderDone
	sharedBody := <-httpDone
	if sharedBody != string(leaderBytes) {
		t.Fatalf("shared response differs from leader bytes:\n%s\n%s", sharedBody, leaderBytes)
	}
	if st := s.Cache().Stats(); st.Shared == 0 {
		t.Fatalf("stats = %+v, want Shared > 0", st)
	}

	// Hammer: 8 goroutines × 20 requests, two interleaved payloads.
	var mu sync.Mutex
	bodies := map[string]map[string]int{payloadA: {}, payloadB: {}}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				payload := payloadA
				if (g+i)%2 == 1 {
					payload = payloadB
				}
				resp, err := http.Post(ts.URL+"/v1/convert", "application/json", strings.NewReader(payload))
				if err != nil {
					t.Errorf("POST: %v", err)
					return
				}
				body := readBody(t, resp)
				if resp.StatusCode != 200 {
					t.Errorf("status %d: %s", resp.StatusCode, body)
					return
				}
				mu.Lock()
				bodies[payload][body]++
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	for payload, got := range bodies {
		if len(got) != 1 {
			t.Errorf("payload %s produced %d distinct response bodies, want 1", payload, len(got))
		}
	}
	st := s.Cache().Stats()
	if st.Hits == 0 {
		t.Fatalf("stats = %+v, want LRU hits under the hammer", st)
	}
	if st.Hits+st.Shared+st.Misses < 161 {
		t.Fatalf("stats = %+v, want all 161 lookups accounted for", st)
	}
}
