package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"positlab/internal/experiments"
	"positlab/internal/runner"
)

func benchPayload(batch int) string {
	var sb strings.Builder
	sb.WriteString(`{"from":"float64","to":"posit32es2","values":[`)
	for i := 0; i < batch; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%g", 1.0+float64(i)/7)
	}
	sb.WriteString(`]}`)
	return sb.String()
}

func benchServer(b *testing.B) *httptest.Server {
	b.Helper()
	s := New(Config{
		// Restrict the suite so the experiment warm-up is one matrix,
		// not nineteen; the warm path under measurement is identical.
		RunnerConfig: runner.Config{
			Options: experiments.Options{Matrices: []string{"bcsstk01"}}.Canonical(),
		},
	})
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return ts
}

func benchConvert(b *testing.B, batch int) {
	ts := benchServer(b)
	payload := benchPayload(batch)
	client := ts.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/convert", "application/json", strings.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != 200 {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

func BenchmarkServiceConvert1(b *testing.B)   { benchConvert(b, 1) }
func BenchmarkServiceConvert256(b *testing.B) { benchConvert(b, 256) }

func BenchmarkServiceExperimentWarm(b *testing.B) {
	ts := benchServer(b)
	client := ts.Client()
	warm, err := client.Get(ts.URL + "/v1/experiments/table2")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, warm.Body); err != nil {
		b.Fatal(err)
	}
	if err := warm.Body.Close(); err != nil {
		b.Fatal(err)
	}
	if warm.StatusCode != 200 {
		b.Fatalf("warm-up status %d", warm.StatusCode)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(ts.URL + "/v1/experiments/table2")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != 200 {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// TestWriteServiceBenchReport regenerates BENCH_service.json at the
// repo root. Gated behind POSITLAB_BENCH_SERVICE=1 so ordinary test
// runs stay fast; `make bench-service` sets it.
func TestWriteServiceBenchReport(t *testing.T) {
	if os.Getenv("POSITLAB_BENCH_SERVICE") != "1" {
		t.Skip("set POSITLAB_BENCH_SERVICE=1 to regenerate BENCH_service.json")
	}
	s := New(Config{
		RunnerConfig: runner.Config{
			Options: experiments.Options{Matrices: []string{"bcsstk01"}}.Canonical(),
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	type loadResult struct {
		Name     string  `json:"name"`
		Requests int     `json:"requests"`
		ReqPerS  float64 `json:"req_per_s"`
		P50MS    float64 `json:"p50_ms"`
		P99MS    float64 `json:"p99_ms"`
		Note     string  `json:"note,omitempty"`
	}

	run := func(name string, duration time.Duration, do func() error, note string) loadResult {
		var lat []float64
		start := time.Now()
		for time.Since(start) < duration {
			t0 := time.Now()
			if err := do(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			lat = append(lat, float64(time.Since(t0))/float64(time.Millisecond))
		}
		elapsed := time.Since(start).Seconds()
		sort.Float64s(lat)
		q := func(p float64) float64 { return lat[int(p*float64(len(lat)-1))] }
		return loadResult{
			Name:     name,
			Requests: len(lat),
			ReqPerS:  float64(len(lat)) / elapsed,
			P50MS:    q(0.50),
			P99MS:    q(0.99),
			Note:     note,
		}
	}

	postFn := func(payload string) func() error {
		return func() error {
			resp, err := client.Post(ts.URL+"/v1/convert", "application/json", strings.NewReader(payload))
			if err != nil {
				return err
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				return err
			}
			if err := resp.Body.Close(); err != nil {
				return err
			}
			if resp.StatusCode != 200 {
				return fmt.Errorf("status %d", resp.StatusCode)
			}
			return nil
		}
	}
	getExp := func() error {
		resp, err := client.Get(ts.URL + "/v1/experiments/table2")
		if err != nil {
			return err
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if err := resp.Body.Close(); err != nil {
			return err
		}
		if resp.StatusCode != 200 {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}

	// Warm the experiment cache outside measurement (the cold request
	// runs the 16-bit IR solves).
	warmStart := time.Now()
	if err := getExp(); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	warmMS := float64(time.Since(warmStart)) / float64(time.Millisecond)

	results := []loadResult{
		run("convert batch=1", 3*time.Second, postFn(benchPayload(1)),
			"single value float64 -> posit32es2; served from the response LRU after the first request"),
		run("convert batch=256", 3*time.Second, postFn(benchPayload(256)),
			"256 values float64 -> posit32es2"),
		run("experiments table2 warm", 3*time.Second, getExp,
			fmt.Sprintf("suite restricted to bcsstk01 (cold compute took %.0f ms); warm responses come from the in-memory LRU", warmMS)),
	}

	report := map[string]any{
		"benchmark": "positd serving layer: single-client closed-loop req/s and latency over httptest (loopback, no network)",
		"date":      time.Now().UTC().Format("2006-01-02"),
		"host": map[string]any{
			"cpus":       runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"os":         runtime.GOOS + "/" + runtime.GOARCH,
			"go":         runtime.Version(),
		},
		"runs": results,
		"cache": map[string]any{
			"stats": s.Cache().Stats(),
			"note":  "hits dominate: each load loop repeats one payload, which is the serving pattern the LRU exists for",
		},
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := "../../BENCH_service.json"
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
