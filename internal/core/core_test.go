package core_test

import (
	"math"
	"path/filepath"
	"testing"

	"positlab/internal/core"
	"positlab/internal/linalg"
	"positlab/internal/matgen"
	"positlab/internal/mmarket"
)

func testProblem(t *testing.T) core.Problem {
	t.Helper()
	var entries []linalg.Entry
	n := 40
	for i := 0; i < n; i++ {
		entries = append(entries, linalg.Entry{Row: i, Col: i, Val: 2})
		if i+1 < n {
			entries = append(entries, linalg.Entry{Row: i, Col: i + 1, Val: -1})
		}
	}
	p, err := core.ProblemFromEntries(n, entries, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSolveAllMethodsAndFormats(t *testing.T) {
	p := testProblem(t)
	for _, format := range []string{"float64", "float32", "posit32es2", "posit(32,3)"} {
		for _, method := range []core.Method{core.MethodCG, core.MethodCholesky} {
			sol, err := core.Solve(p, core.Config{Format: format, Method: method})
			if err != nil {
				t.Fatalf("%s/%v: %v", format, method, err)
			}
			if !sol.Converged {
				t.Fatalf("%s/%v: not converged", format, method)
			}
			tol := 1e-4
			if method == core.MethodCholesky {
				tol = 1e-5
			}
			if sol.BackwardError > tol {
				t.Errorf("%s/%v: backward error %g", format, method, sol.BackwardError)
			}
		}
	}
	for _, format := range []string{"float16", "posit16es1", "posit16es2", "bfloat16"} {
		for _, method := range []core.Method{core.MethodMixedIR, core.MethodGMRESIR} {
			sol, err := core.Solve(p, core.Config{Format: format, Method: method})
			if err != nil {
				t.Fatalf("%s/%v: %v", format, method, err)
			}
			if !sol.Converged || sol.BackwardError > 1e-12 {
				t.Fatalf("%s/%v: %+v", format, method, sol)
			}
		}
	}
	// The ablation solvers through the facade.
	for _, method := range []core.Method{core.MethodPCG, core.MethodLDLT} {
		sol, err := core.Solve(p, core.Config{Format: "posit32es2", Method: method})
		if err != nil || !sol.Converged {
			t.Fatalf("posit32/%v: %v %+v", method, err, sol)
		}
		if sol.BackwardError > 1e-4 {
			t.Fatalf("posit32/%v: backward error %g", method, sol.BackwardError)
		}
	}
}

func TestMethodStrings(t *testing.T) {
	for m, want := range map[core.Method]string{
		core.MethodCG:      "cg",
		core.MethodPCG:     "pcg",
		core.MethodLDLT:    "ldlt",
		core.MethodGMRESIR: "gmres-ir",
	} {
		if m.String() != want {
			t.Errorf("method %d = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestSolveRescaling(t *testing.T) {
	// A badly scaled replica: CG in posit(32,2) improves with the
	// pow2 rescale; Higham + IR converges for Float16.
	m := matgen.Generate(mustTarget(t, "bcsstk01"))
	p := core.Problem{A: m.A, B: m.B}

	plain, err := core.Solve(p, core.Config{Format: "posit32es2", Method: core.MethodCG})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := core.Solve(p, core.Config{Format: "posit32es2", Method: core.MethodCG, Rescale: core.RescaleInfNormPow2})
	if err != nil {
		t.Fatal(err)
	}
	if scaled.ScaleFactor == 1 {
		t.Error("expected a nontrivial scale factor")
	}
	if scaled.Iterations >= plain.Iterations {
		t.Errorf("rescaled CG took %d >= %d iterations", scaled.Iterations, plain.Iterations)
	}

	diag, err := core.Solve(p, core.Config{Format: "posit32es2", Method: core.MethodCholesky, Rescale: core.RescaleDiagAvg})
	if err != nil {
		t.Fatal(err)
	}
	if diag.BackwardError > 1e-7 {
		t.Errorf("diag-rescaled Cholesky backward error %g", diag.BackwardError)
	}

	ir, err := core.Solve(p, core.Config{Format: "float16", Method: core.MethodMixedIR, Rescale: core.RescaleHigham})
	if err != nil {
		t.Fatal(err)
	}
	if !ir.Converged {
		t.Errorf("Higham-scaled Float16 IR did not converge: %+v", ir)
	}
}

func TestSolveErrors(t *testing.T) {
	p := testProblem(t)
	if _, err := core.Solve(p, core.Config{Format: "float128", Method: core.MethodCG}); err == nil {
		t.Error("unknown format must error")
	}
	if _, err := core.Solve(p, core.Config{Format: "float64", Method: core.Method(99)}); err == nil {
		t.Error("unknown method must error")
	}
	if _, err := core.Solve(p, core.Config{Format: "float64", Method: core.MethodCG, Rescale: core.RescaleHigham}); err == nil {
		t.Error("Higham + CG must be rejected")
	}
	if _, err := core.Solve(core.Problem{}, core.Config{Format: "float64"}); err == nil {
		t.Error("empty problem must error")
	}
	// Out-of-range Float16 direct factorization fails loudly.
	m := matgen.Generate(mustTarget(t, "bcsstk01"))
	if _, err := core.Solve(core.Problem{A: m.A, B: m.B}, core.Config{Format: "float16", Method: core.MethodMixedIR}); err == nil {
		t.Error("naive Float16 IR on bcsstk01 should fail")
	}
	// Wrong rhs length.
	if _, err := core.ProblemFromEntries(2, []linalg.Entry{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1}}, []float64{1}); err == nil {
		t.Error("bad rhs length must error")
	}
}

func TestProblemFromMTX(t *testing.T) {
	m := matgen.Generate(mustTarget(t, "lund_b"))
	path := filepath.Join(t.TempDir(), "lund_b.mtx")
	if err := mmarket.WriteFile(path, m.A, true, nil); err != nil {
		t.Fatal(err)
	}
	p, err := core.ProblemFromMTX(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(p, core.Config{Format: "float64", Method: core.MethodCholesky})
	if err != nil {
		t.Fatal(err)
	}
	// b defaulted to A·x̂, so x ≈ x̂ = 1/√n.
	want := 1 / math.Sqrt(float64(p.A.N))
	for i, x := range sol.X {
		if math.Abs(x-want) > 1e-6*want {
			t.Fatalf("x[%d] = %g, want %g", i, x, want)
		}
	}
	if _, err := core.ProblemFromMTX(filepath.Join(t.TempDir(), "missing.mtx"), nil); err == nil {
		t.Error("missing file must error")
	}
}

func mustTarget(t *testing.T, name string) matgen.Target {
	t.Helper()
	tgt, err := matgen.TargetByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}
