package core_test

import (
	"fmt"

	"positlab/internal/core"
	"positlab/internal/linalg"
)

func ExampleSolve() {
	// A 4x4 tridiagonal SPD system; the right-hand side defaults to
	// b = A·x̂ with x̂ = (1/√n, …), the paper's setup.
	var entries []linalg.Entry
	for i := 0; i < 4; i++ {
		entries = append(entries, linalg.Entry{Row: i, Col: i, Val: 2})
		if i+1 < 4 {
			entries = append(entries, linalg.Entry{Row: i, Col: i + 1, Val: -1})
		}
	}
	p, _ := core.ProblemFromEntries(4, entries, nil)
	sol, err := core.Solve(p, core.Config{
		Format: "posit32es2",
		Method: core.MethodCholesky,
	})
	fmt.Println(err, sol.Converged, sol.BackwardError < 1e-6)
	// Output: <nil> true true
}

func ExampleSolve_formats() {
	var entries []linalg.Entry
	for i := 0; i < 8; i++ {
		entries = append(entries, linalg.Entry{Row: i, Col: i, Val: 3})
		if i+1 < 8 {
			entries = append(entries, linalg.Entry{Row: i, Col: i + 1, Val: 1})
		}
	}
	p, _ := core.ProblemFromEntries(8, entries, nil)
	for _, format := range []string{"float16", "posit16es2"} {
		sol, _ := core.Solve(p, core.Config{Format: format, Method: core.MethodMixedIR})
		fmt.Println(sol.Format, sol.Converged)
	}
	// Output:
	// Float16 true
	// Posit(16,2) true
}
