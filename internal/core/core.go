// Package core is the library's high-level entry point: solve a
// symmetric positive-definite system Ax = b under any number format of
// the study, with any of the paper's solvers and rescaling strategies,
// and get back the solution together with the quality metrics the
// paper reports.
//
// It ties together the substrates — internal/posit and
// internal/minifloat arithmetic behind internal/arith, the
// internal/linalg matrices, internal/solvers and internal/scaling —
// into the API a downstream user scripts against:
//
//	p, _ := core.ProblemFromMTX("matrix.mtx", nil)
//	sol, _ := core.Solve(p, core.Config{
//	    Format:  "posit32es2",
//	    Method:  core.MethodCG,
//	    Rescale: core.RescaleInfNormPow2,
//	})
package core

import (
	"fmt"
	"math"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/mmarket"
	"positlab/internal/scaling"
	"positlab/internal/solvers"
)

// Method selects the solver.
type Method int

const (
	// MethodCG is the conjugate gradient method (paper Algorithm 1),
	// run entirely in the chosen format.
	MethodCG Method = iota
	// MethodCholesky is the direct solve by Cholesky factorization and
	// two triangular substitutions (Algorithm 2, one pass), run
	// entirely in the chosen format.
	MethodCholesky
	// MethodMixedIR factors in the chosen (low-precision) format and
	// refines in Float64 (the paper's mixed-precision configuration).
	MethodMixedIR
	// MethodPCG is Jacobi-preconditioned conjugate gradients in the
	// chosen format (the preconditioning ablation).
	MethodPCG
	// MethodGMRESIR is mixed-precision refinement with factor-
	// preconditioned GMRES corrections (the paper's §V-D2 suggestion).
	MethodGMRESIR
	// MethodLDLT is the square-root-free direct solve.
	MethodLDLT
)

func (m Method) String() string {
	switch m {
	case MethodCG:
		return "cg"
	case MethodCholesky:
		return "cholesky"
	case MethodMixedIR:
		return "mixed-ir"
	case MethodPCG:
		return "pcg"
	case MethodGMRESIR:
		return "gmres-ir"
	case MethodLDLT:
		return "ldlt"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// Rescale selects the paper's matrix preparation.
type Rescale int

const (
	// RescaleNone solves the system as given.
	RescaleNone Rescale = iota
	// RescaleInfNormPow2 scales the whole system by a power of two so
	// ‖A‖∞ ≈ 2^10 (the paper's CG strategy, §V-B).
	RescaleInfNormPow2
	// RescaleDiagAvg divides the system by the nearest power of two of
	// the average |diagonal| (Algorithm 3, for Cholesky).
	RescaleDiagAvg
	// RescaleHigham applies Higham's two-sided equilibration with the
	// format-aware µ shift (Algorithms 4–5, for mixed-precision IR).
	RescaleHigham
)

func (r Rescale) String() string {
	switch r {
	case RescaleNone:
		return "none"
	case RescaleInfNormPow2:
		return "infnorm-pow2"
	case RescaleDiagAvg:
		return "diag-avg-pow2"
	case RescaleHigham:
		return "higham"
	}
	return fmt.Sprintf("rescale(%d)", int(r))
}

// Problem is a symmetric positive-definite system Ax = b.
type Problem struct {
	A *linalg.Sparse
	B []float64
}

// ProblemFromEntries builds a problem from coordinate entries
// (symmetrized) and a right-hand side. A nil b defaults to b = A·x̂
// with x̂ = (1/√n, …), the paper's choice.
func ProblemFromEntries(n int, entries []linalg.Entry, b []float64) (Problem, error) {
	a, err := linalg.NewSparseFromEntries(n, entries, true)
	if err != nil {
		return Problem{}, err
	}
	return problemWithRHS(a, b)
}

// ProblemFromMTX reads a MatrixMarket file. A nil b defaults to b = A·x̂.
func ProblemFromMTX(path string, b []float64) (Problem, error) {
	a, _, err := mmarket.ReadFile(path)
	if err != nil {
		return Problem{}, err
	}
	return problemWithRHS(a, b)
}

func problemWithRHS(a *linalg.Sparse, b []float64) (Problem, error) {
	if b == nil {
		xhat := make([]float64, a.N)
		for i := range xhat {
			xhat[i] = 1 / math.Sqrt(float64(a.N))
		}
		b = make([]float64, a.N)
		a.MatVecF64(xhat, b)
	}
	if len(b) != a.N {
		return Problem{}, fmt.Errorf("core: rhs length %d != n %d", len(b), a.N)
	}
	return Problem{A: a, B: b}, nil
}

// Config selects format, method, rescaling and caps.
type Config struct {
	// Format is an arith registry name: "float64", "float32",
	// "float16", "bfloat16", "posit<N>es<ES>" or "posit(N,ES)".
	Format  string
	Method  Method
	Rescale Rescale
	// Tol is the convergence tolerance: relative residual for CG
	// (default 1e-5, the paper's), backward error for mixed IR
	// (default 1e-15). Ignored by the one-pass Cholesky solve.
	Tol float64
	// MaxIter caps CG (default 10·N) and IR (default 1000).
	MaxIter int
}

// Solution reports a solve.
type Solution struct {
	// X is the computed solution in the original (unscaled) variables.
	X []float64
	// Iterations of CG or IR; 0 for the direct solve.
	Iterations int
	// Converged for the iterative methods; true for a successful
	// direct solve.
	Converged bool
	// BackwardError is ‖b−Ax‖₂/‖b‖₂ against the original system in
	// Float64, the paper's quality metric.
	BackwardError float64
	// ScaleFactor is the scalar applied by the pow2 rescalings (1 when
	// none).
	ScaleFactor float64
	// Format echoes the resolved format name.
	Format string
}

// Solve runs the configured solver. Arithmetic failures (posit NaR,
// IEEE NaN/Inf, factorization breakdown) return an error; an iterative
// method that merely hits its cap returns Converged=false and no error.
func Solve(p Problem, cfg Config) (Solution, error) {
	f, err := arith.ByName(cfg.Format)
	if err != nil {
		return Solution{}, err
	}
	if p.A == nil || p.A.N == 0 {
		return Solution{}, fmt.Errorf("core: empty problem")
	}
	if cfg.Rescale == RescaleHigham && cfg.Method != MethodMixedIR && cfg.Method != MethodGMRESIR {
		return Solution{}, fmt.Errorf("core: Higham rescaling applies to the mixed-precision refinement methods only")
	}

	a, b := p.A, p.B
	factor := 1.0
	switch cfg.Rescale {
	case RescaleInfNormPow2:
		a = p.A.Clone()
		b = append([]float64(nil), p.B...)
		factor = scaling.RescaleSystemCG(a, b)
	case RescaleDiagAvg:
		a = p.A.Clone()
		b = append([]float64(nil), p.B...)
		factor = scaling.RescaleSystemCholesky(a, b)
	}

	sol := Solution{Format: f.Name(), ScaleFactor: factor}
	irScaling := func() solvers.IRScaling {
		if cfg.Rescale == RescaleHigham {
			return solvers.IRScaling{
				R:  scaling.HighamEquilibrate(a, 1e-8, 100),
				Mu: scaling.MuFor(f),
			}
		}
		return solvers.IRScaling{}
	}
	cgTol := cfg.Tol
	if cgTol == 0 {
		cgTol = 1e-5
	}
	cgMax := cfg.MaxIter
	if cgMax == 0 {
		cgMax = 10 * a.N
	}

	switch cfg.Method {
	case MethodCG:
		res := solvers.CG(a.ToFormat(f, false), linalg.VecFromFloat64(f, b), cgTol, cgMax)
		if res.Failed {
			return Solution{}, fmt.Errorf("core: CG in %s hit an arithmetic exception after %d iterations", f.Name(), res.Iterations)
		}
		sol.X = res.X
		sol.Iterations = res.Iterations
		sol.Converged = res.Converged

	case MethodPCG:
		res := solvers.PCG(a.ToFormat(f, false), linalg.VecFromFloat64(f, a.Diag()),
			linalg.VecFromFloat64(f, b), cgTol, cgMax)
		if res.Failed {
			return Solution{}, fmt.Errorf("core: PCG in %s hit an arithmetic exception after %d iterations", f.Name(), res.Iterations)
		}
		sol.X = res.X
		sol.Iterations = res.Iterations
		sol.Converged = res.Converged

	case MethodCholesky:
		x, err := solvers.CholeskySolve(a.ToDense().ToFormat(f, false), linalg.VecFromFloat64(f, b))
		if err != nil {
			return Solution{}, fmt.Errorf("core: Cholesky in %s: %w", f.Name(), err)
		}
		sol.X = linalg.VecToFloat64(f, x)
		sol.Converged = true

	case MethodLDLT:
		x, err := solvers.LDLTDirectSolve(a.ToDense().ToFormat(f, false), linalg.VecFromFloat64(f, b))
		if err != nil {
			return Solution{}, fmt.Errorf("core: LDLT in %s: %w", f.Name(), err)
		}
		sol.X = linalg.VecToFloat64(f, x)
		sol.Converged = true

	case MethodMixedIR:
		res := solvers.MixedIR(a, b, f, irScaling(), solvers.IROptions{Tol: cfg.Tol, MaxIter: cfg.MaxIter})
		if res.FactorFailed {
			return Solution{}, fmt.Errorf("core: %s factorization failed", f.Name())
		}
		sol.X = res.X
		sol.Iterations = res.Iterations
		sol.Converged = res.Converged

	case MethodGMRESIR:
		res := solvers.MixedIRGMRES(a, b, f, irScaling(),
			solvers.IROptions{Tol: cfg.Tol, MaxIter: cfg.MaxIter}, solvers.GMRESOptions{})
		if res.FactorFailed {
			return Solution{}, fmt.Errorf("core: %s factorization failed", f.Name())
		}
		sol.X = res.X
		sol.Iterations = res.Iterations
		sol.Converged = res.Converged

	default:
		return Solution{}, fmt.Errorf("core: unknown method %v", cfg.Method)
	}

	// Quality metric against the original, unscaled system.
	if sol.X != nil {
		sol.BackwardError = solvers.BackwardError(p.A, p.B, sol.X)
	}
	return sol, nil
}
