package arith

// OpCounts tallies the arithmetic performed through an instrumented
// Format. The paper's mixed-precision motivation rests on an operation
// count split — "perform the O(n³) work (i.e. LU factorization) in a
// lower precision ... and refine the solution by O(n²) refinement
// iterations" (§III) — which this instrumentation verifies directly.
type OpCounts struct {
	Add, Sub, Mul, Div, Sqrt uint64
	Conv                     uint64 // FromFloat64 conversions
}

// Total returns the sum over all operation kinds (excluding
// conversions).
func (o OpCounts) Total() uint64 {
	return o.Add + o.Sub + o.Mul + o.Div + o.Sqrt
}

type instrumented struct {
	Format
	counts *OpCounts
}

// Instrument wraps a Format so that every operation increments the
// returned counters. The wrapper is transparent: results are those of
// the underlying format. Not safe for concurrent use (the study is
// single-threaded, like the paper's).
func Instrument(f Format) (Format, *OpCounts) {
	c := &OpCounts{}
	return instrumented{Format: f, counts: c}, c
}

func (i instrumented) FromFloat64(x float64) Num {
	i.counts.Conv++
	return i.Format.FromFloat64(x)
}

func (i instrumented) Add(a, b Num) Num {
	i.counts.Add++
	return i.Format.Add(a, b)
}

func (i instrumented) Sub(a, b Num) Num {
	i.counts.Sub++
	return i.Format.Sub(a, b)
}

func (i instrumented) Mul(a, b Num) Num {
	i.counts.Mul++
	return i.Format.Mul(a, b)
}

func (i instrumented) Div(a, b Num) Num {
	i.counts.Div++
	return i.Format.Div(a, b)
}

func (i instrumented) Sqrt(a Num) Num {
	i.counts.Sqrt++
	return i.Format.Sqrt(a)
}
