package arith

import "sync/atomic"

// OpCounts tallies the arithmetic performed through an instrumented
// Format. The paper's mixed-precision motivation rests on an operation
// count split — "perform the O(n³) work (i.e. LU factorization) in a
// lower precision ... and refine the solution by O(n²) refinement
// iterations" (§III) — which this instrumentation verifies directly.
type OpCounts struct {
	Add, Sub, Mul, Div, Sqrt uint64
	Conv                     uint64 // FromFloat64 conversions
}

// Total returns the sum over all operation kinds (excluding
// conversions).
func (o OpCounts) Total() uint64 {
	return o.Add + o.Sub + o.Mul + o.Div + o.Sqrt
}

type instrumented struct {
	Format
	counts *OpCounts
}

// Instrument wraps a Format so that every operation increments the
// returned counters. The wrapper is transparent: results are those of
// the underlying format. Not safe for concurrent use (the study is
// single-threaded, like the paper's).
func Instrument(f Format) (Format, *OpCounts) {
	c := &OpCounts{}
	return instrumented{Format: f, counts: c}, c
}

func (i instrumented) FromFloat64(x float64) Num {
	i.counts.Conv++
	return i.Format.FromFloat64(x)
}

func (i instrumented) Add(a, b Num) Num {
	i.counts.Add++
	return i.Format.Add(a, b)
}

func (i instrumented) Sub(a, b Num) Num {
	i.counts.Sub++
	return i.Format.Sub(a, b)
}

func (i instrumented) Mul(a, b Num) Num {
	i.counts.Mul++
	return i.Format.Mul(a, b)
}

func (i instrumented) Div(a, b Num) Num {
	i.counts.Div++
	return i.Format.Div(a, b)
}

func (i instrumented) Sqrt(a Num) Num {
	i.counts.Sqrt++
	return i.Format.Sqrt(a)
}

// AtomicOpCounts is an OpCounts safe for concurrent use: the
// experiment runner hands one to each parallel job so per-job
// operation counts stay exact even when jobs share worker threads.
type AtomicOpCounts struct {
	add, sub, mul, div, sqrt, conv atomic.Uint64
}

// Snapshot returns a point-in-time copy of the counters.
func (a *AtomicOpCounts) Snapshot() OpCounts {
	return OpCounts{
		Add:  a.add.Load(),
		Sub:  a.sub.Load(),
		Mul:  a.mul.Load(),
		Div:  a.div.Load(),
		Sqrt: a.sqrt.Load(),
		Conv: a.conv.Load(),
	}
}

type instrumentedAtomic struct {
	Format
	counts *AtomicOpCounts
}

// InstrumentAtomic wraps a Format so every operation increments the
// shared atomic counters. Like Instrument the wrapper is transparent —
// results are bit-identical to the underlying format — but it is safe
// for concurrent use across goroutines.
func InstrumentAtomic(f Format, c *AtomicOpCounts) Format {
	return instrumentedAtomic{Format: f, counts: c}
}

func (i instrumentedAtomic) FromFloat64(x float64) Num {
	i.counts.conv.Add(1)
	return i.Format.FromFloat64(x)
}

func (i instrumentedAtomic) Add(a, b Num) Num {
	i.counts.add.Add(1)
	return i.Format.Add(a, b)
}

func (i instrumentedAtomic) Sub(a, b Num) Num {
	i.counts.sub.Add(1)
	return i.Format.Sub(a, b)
}

func (i instrumentedAtomic) Mul(a, b Num) Num {
	i.counts.mul.Add(1)
	return i.Format.Mul(a, b)
}

func (i instrumentedAtomic) Div(a, b Num) Num {
	i.counts.div.Add(1)
	return i.Format.Div(a, b)
}

func (i instrumentedAtomic) Sqrt(a Num) Num {
	i.counts.sqrt.Add(1)
	return i.Format.Sqrt(a)
}
