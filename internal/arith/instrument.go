package arith

import "sync/atomic"

// OpCounts tallies the arithmetic performed through an instrumented
// Format. The paper's mixed-precision motivation rests on an operation
// count split — "perform the O(n³) work (i.e. LU factorization) in a
// lower precision ... and refine the solution by O(n²) refinement
// iterations" (§III) — which this instrumentation verifies directly.
type OpCounts struct {
	Add, Sub, Mul, Div, Sqrt uint64
	Conv                     uint64 // FromFloat64 conversions
}

// Total returns the sum over all operation kinds (excluding
// conversions).
func (o OpCounts) Total() uint64 {
	return o.Add + o.Sub + o.Mul + o.Div + o.Sqrt
}

type instrumented struct {
	Format
	counts *OpCounts
}

// Instrument wraps a Format so that every operation increments the
// returned counters. The wrapper is transparent: results are those of
// the underlying format. Not safe for concurrent use (the study is
// single-threaded, like the paper's).
func Instrument(f Format) (Format, *OpCounts) {
	c := &OpCounts{}
	return instrumented{Format: f, counts: c}, c
}

func (i instrumented) FromFloat64(x float64) Num {
	i.counts.Conv++
	return i.Format.FromFloat64(x)
}

func (i instrumented) Add(a, b Num) Num {
	i.counts.Add++
	return i.Format.Add(a, b)
}

func (i instrumented) Sub(a, b Num) Num {
	i.counts.Sub++
	return i.Format.Sub(a, b)
}

func (i instrumented) Mul(a, b Num) Num {
	i.counts.Mul++
	return i.Format.Mul(a, b)
}

func (i instrumented) Div(a, b Num) Num {
	i.counts.Div++
	return i.Format.Div(a, b)
}

func (i instrumented) Sqrt(a Num) Num {
	i.counts.Sqrt++
	return i.Format.Sqrt(a)
}

func (i instrumented) MulAdd(a, b, c Num) Num {
	i.counts.Mul++
	i.counts.Add++
	return i.Format.MulAdd(a, b, c)
}

// Kernel methods: the wrapper batches one counter update per call (the
// exact per-element tally the scalar loop would have produced) and
// hands the slice to the underlying format's kernels, so instrumented
// runs keep the kernel speed. Like the scalar methods these are not
// safe for concurrent use; parallel in-solver sharding requires
// InstrumentAtomic.

func (i instrumented) DotKernel(x, y []Num) Num {
	n := uint64(len(x))
	i.counts.Mul += n
	i.counts.Add += n
	return BulkOf(i.Format).DotKernel(x, y)
}

func (i instrumented) AxpyKernel(alpha Num, x, y []Num) {
	n := uint64(len(x))
	i.counts.Mul += n
	i.counts.Add += n
	BulkOf(i.Format).AxpyKernel(alpha, x, y)
}

func (i instrumented) ScaleKernel(alpha Num, x []Num) {
	i.counts.Mul += uint64(len(x))
	BulkOf(i.Format).ScaleKernel(alpha, x)
}

func (i instrumented) MulAddKernel(alpha Num, x, y, dst []Num) {
	n := uint64(len(x))
	i.counts.Mul += n
	i.counts.Add += n
	BulkOf(i.Format).MulAddKernel(alpha, x, y, dst)
}

func (i instrumented) MatVecKernel(rowPtr, col []int, val []Num, x, y []Num) {
	if len(rowPtr) > 0 {
		nnz := uint64(rowPtr[len(rowPtr)-1] - rowPtr[0])
		i.counts.Mul += nnz
		i.counts.Add += nnz
	}
	BulkOf(i.Format).MatVecKernel(rowPtr, col, val, x, y)
}

func (i instrumented) TrailingUpdateKernel(nalpha Num, x, w []Num) {
	n := uint64(len(x))
	i.counts.Mul += n
	i.counts.Add += n
	BulkOf(i.Format).TrailingUpdateKernel(nalpha, x, w)
}

func (i instrumented) DivKernel(alpha Num, x []Num) {
	i.counts.Div += uint64(len(x))
	BulkOf(i.Format).DivKernel(alpha, x)
}

// AtomicOpCounts is an OpCounts safe for concurrent use: the
// experiment runner hands one to each parallel job so per-job
// operation counts stay exact even when jobs share worker threads.
type AtomicOpCounts struct {
	add, sub, mul, div, sqrt, conv atomic.Uint64
}

// Snapshot returns a point-in-time copy of the counters.
func (a *AtomicOpCounts) Snapshot() OpCounts {
	return OpCounts{
		Add:  a.add.Load(),
		Sub:  a.sub.Load(),
		Mul:  a.mul.Load(),
		Div:  a.div.Load(),
		Sqrt: a.sqrt.Load(),
		Conv: a.conv.Load(),
	}
}

type instrumentedAtomic struct {
	Format
	counts *AtomicOpCounts
}

// InstrumentAtomic wraps a Format so every operation increments the
// shared atomic counters. Like Instrument the wrapper is transparent —
// results are bit-identical to the underlying format — but it is safe
// for concurrent use across goroutines.
func InstrumentAtomic(f Format, c *AtomicOpCounts) Format {
	return instrumentedAtomic{Format: f, counts: c}
}

func (i instrumentedAtomic) FromFloat64(x float64) Num {
	i.counts.conv.Add(1)
	return i.Format.FromFloat64(x)
}

func (i instrumentedAtomic) Add(a, b Num) Num {
	i.counts.add.Add(1)
	return i.Format.Add(a, b)
}

func (i instrumentedAtomic) Sub(a, b Num) Num {
	i.counts.sub.Add(1)
	return i.Format.Sub(a, b)
}

func (i instrumentedAtomic) Mul(a, b Num) Num {
	i.counts.mul.Add(1)
	return i.Format.Mul(a, b)
}

func (i instrumentedAtomic) Div(a, b Num) Num {
	i.counts.div.Add(1)
	return i.Format.Div(a, b)
}

func (i instrumentedAtomic) Sqrt(a Num) Num {
	i.counts.sqrt.Add(1)
	return i.Format.Sqrt(a)
}

func (i instrumentedAtomic) MulAdd(a, b, c Num) Num {
	i.counts.mul.Add(1)
	i.counts.add.Add(1)
	return i.Format.MulAdd(a, b, c)
}

// Kernel methods: one atomic batch per kernel call instead of one
// atomic per scalar op — the counters stay exact (the batch is the
// same per-element tally the scalar loop produces) and contention
// drops by the slice length. Safe under in-solver parallel sharding.

func (i instrumentedAtomic) DotKernel(x, y []Num) Num {
	n := uint64(len(x))
	i.counts.mul.Add(n)
	i.counts.add.Add(n)
	return BulkOf(i.Format).DotKernel(x, y)
}

func (i instrumentedAtomic) AxpyKernel(alpha Num, x, y []Num) {
	n := uint64(len(x))
	i.counts.mul.Add(n)
	i.counts.add.Add(n)
	BulkOf(i.Format).AxpyKernel(alpha, x, y)
}

func (i instrumentedAtomic) ScaleKernel(alpha Num, x []Num) {
	i.counts.mul.Add(uint64(len(x)))
	BulkOf(i.Format).ScaleKernel(alpha, x)
}

func (i instrumentedAtomic) MulAddKernel(alpha Num, x, y, dst []Num) {
	n := uint64(len(x))
	i.counts.mul.Add(n)
	i.counts.add.Add(n)
	BulkOf(i.Format).MulAddKernel(alpha, x, y, dst)
}

func (i instrumentedAtomic) MatVecKernel(rowPtr, col []int, val []Num, x, y []Num) {
	if len(rowPtr) > 0 {
		nnz := uint64(rowPtr[len(rowPtr)-1] - rowPtr[0])
		i.counts.mul.Add(nnz)
		i.counts.add.Add(nnz)
	}
	BulkOf(i.Format).MatVecKernel(rowPtr, col, val, x, y)
}

func (i instrumentedAtomic) TrailingUpdateKernel(nalpha Num, x, w []Num) {
	n := uint64(len(x))
	i.counts.mul.Add(n)
	i.counts.add.Add(n)
	BulkOf(i.Format).TrailingUpdateKernel(nalpha, x, w)
}

func (i instrumentedAtomic) DivKernel(alpha Num, x []Num) {
	i.counts.div.Add(uint64(len(x)))
	BulkOf(i.Format).DivKernel(alpha, x)
}
