package arith

// Slice-level kernels.
//
// The solvers' wall time is dominated by per-scalar interface dispatch:
// every Add/Mul in a CG matvec or a Cholesky trailing update is a
// dynamic call on a Format. BulkFormat is the batched alternative — a
// format may implement whole-slice operations whose inner loops run
// with zero interface dispatch, while remaining bit-identical to the
// equivalent sequence of scalar Format calls. Every kernel is defined
// *as* a scalar-op sequence (documented per method); implementations
// may reorganize the work (value-domain loops, register-level
// rounding) but never the roundings themselves, which the differential
// tests in kernels_test.go assert format by format.
//
// Callers obtain kernels through BulkOf, which falls back to a generic
// scalar implementation so every Format — including instrumented
// wrappers and the slow integer-pipeline references — works unchanged.

// BulkFormat is the optional slice-kernel interface of a Format.
// Semantics, in terms of the format's scalar operations (all loops
// left-to-right over increasing i; no reordering, no fused
// accumulation):
//
//	DotKernel:            s = Zero; s = Add(s, Mul(x[i], y[i])); return s
//	AxpyKernel:           y[i] = Add(y[i], Mul(alpha, x[i]))
//	ScaleKernel:          x[i] = Mul(alpha, x[i])
//	MulAddKernel:         dst[i] = MulAdd(alpha, x[i], y[i])
//	MatVecKernel:         y[i] = Σ-loop of Add(·, Mul(val[idx], x[col[idx]]))
//	TrailingUpdateKernel: w[i] = MulAdd(nalpha, x[i], w[i])
//	DivKernel:            x[i] = Div(x[i], alpha)
//
// MulAddKernel may be called with dst aliasing x or y elementwise
// (dst[i] is written only after x[i] and y[i] are read).
// TrailingUpdateKernel takes the *negated* scale so the Cholesky
// update w ← w − α·x is expressible through MulAdd; by the sign
// symmetry of rounding, Add(Mul(Neg(α), x), w) is bit-identical to
// Sub(w, Mul(α, x)) in every supported format.
type BulkFormat interface {
	DotKernel(x, y []Num) Num
	AxpyKernel(alpha Num, x, y []Num)
	ScaleKernel(alpha Num, x []Num)
	MulAddKernel(alpha Num, x, y, dst []Num)
	// MatVecKernel computes the CSR product rows of y: for each local
	// row i (rowPtr has len(y)+1 entries), y[i] accumulates
	// val[idx]·x[col[idx]] for idx in [rowPtr[i], rowPtr[i+1]).
	// rowPtr may be a window into a larger matrix: col and val are
	// indexed absolutely, so sharded callers pass rowPtr[lo:hi+1] and
	// y[lo:hi].
	MatVecKernel(rowPtr, col []int, val []Num, x, y []Num)
	TrailingUpdateKernel(nalpha Num, x, w []Num)
	// DivKernel divides the slice elementwise by alpha — the Cholesky
	// row division by the pivot.
	DivKernel(alpha Num, x []Num)
}

// BulkOf returns f's slice kernels: f itself when it implements
// BulkFormat, otherwise a generic fallback over f's scalar operations.
// Hoist the result out of loops — the fallback wrapper is a fresh
// interface value per call.
func BulkOf(f Format) BulkFormat {
	if b, ok := f.(BulkFormat); ok {
		return b
	}
	return scalarKernels{f}
}

// scalarKernels implements every kernel as the defining scalar-op
// sequence, so any Format participates in the kernel layer unchanged.
// The mul-add pairs dispatch through Format.MulAdd — one dynamic call
// per element instead of two.
type scalarKernels struct{ f Format }

func (s scalarKernels) DotKernel(x, y []Num) Num {
	f := s.f
	acc := f.Zero()
	for i := range x {
		acc = f.MulAdd(x[i], y[i], acc)
	}
	return acc
}

func (s scalarKernels) AxpyKernel(alpha Num, x, y []Num) {
	f := s.f
	for i := range x {
		y[i] = f.MulAdd(alpha, x[i], y[i])
	}
}

func (s scalarKernels) ScaleKernel(alpha Num, x []Num) {
	f := s.f
	for i := range x {
		x[i] = f.Mul(alpha, x[i])
	}
}

func (s scalarKernels) MulAddKernel(alpha Num, x, y, dst []Num) {
	f := s.f
	for i := range x {
		dst[i] = f.MulAdd(alpha, x[i], y[i])
	}
}

func (s scalarKernels) MatVecKernel(rowPtr, col []int, val []Num, x, y []Num) {
	f := s.f
	for i := 0; i+1 < len(rowPtr); i++ {
		sum := f.Zero()
		for idx := rowPtr[i]; idx < rowPtr[i+1]; idx++ {
			sum = f.MulAdd(val[idx], x[col[idx]], sum)
		}
		y[i] = sum
	}
}

func (s scalarKernels) TrailingUpdateKernel(nalpha Num, x, w []Num) {
	f := s.f
	for i := range x {
		w[i] = f.MulAdd(nalpha, x[i], w[i])
	}
}

func (s scalarKernels) DivKernel(alpha Num, x []Num) {
	f := s.f
	for i := range x {
		x[i] = f.Div(x[i], alpha)
	}
}

// --- value-domain kernels (fast formats) ---

// valueKernels is the shared kernel engine of the fast value-domain
// formats (fastPosit, fastMini). The inner loops compute in float64
// and re-round every operation through roundTables.roundHot — no
// interface dispatch, no call on the common path — falling back to the
// format's full addVal/mulVal (general rounder plus integer-pipeline
// escape) for zeros, exceptional values, extreme scales, and
// double-rounding ambiguities. Bit-identity with the scalar methods
// holds by construction: roundHot agrees with the general rounder
// whenever it succeeds, and the fallback *is* the scalar path.
type valueKernels struct {
	t        *roundTables
	add, mul func(x, y float64) float64
}

func (k *valueKernels) dot(x, y []Num) Num {
	t := k.t
	s := 0.0
	for i := range x {
		xi, yi := f64(x[i]), f64(y[i])
		m, ok := t.roundHot(xi * yi)
		if !ok {
			m = k.mul(xi, yi)
		}
		v, ok := t.roundHot(s + m)
		if !ok {
			v = k.add(s, m)
		}
		s = v
	}
	return n64(s)
}

func (k *valueKernels) axpy(alpha Num, x, y []Num) {
	t := k.t
	a := f64(alpha)
	for i := range x {
		xi := f64(x[i])
		m, ok := t.roundHot(a * xi)
		if !ok {
			m = k.mul(a, xi)
		}
		yi := f64(y[i])
		v, ok := t.roundHot(yi + m)
		if !ok {
			v = k.add(yi, m)
		}
		y[i] = n64(v)
	}
}

func (k *valueKernels) scale(alpha Num, x []Num) {
	t := k.t
	a := f64(alpha)
	for i := range x {
		xi := f64(x[i])
		v, ok := t.roundHot(a * xi)
		if !ok {
			v = k.mul(a, xi)
		}
		x[i] = n64(v)
	}
}

func (k *valueKernels) mulAdd(alpha Num, x, y, dst []Num) {
	t := k.t
	a := f64(alpha)
	for i := range x {
		xi := f64(x[i])
		m, ok := t.roundHot(a * xi)
		if !ok {
			m = k.mul(a, xi)
		}
		yi := f64(y[i])
		v, ok := t.roundHot(m + yi)
		if !ok {
			v = k.add(m, yi)
		}
		dst[i] = n64(v)
	}
}

func (k *valueKernels) matVec(rowPtr, col []int, val []Num, x, y []Num) {
	t := k.t
	for i := 0; i+1 < len(rowPtr); i++ {
		s := 0.0
		for idx := rowPtr[i]; idx < rowPtr[i+1]; idx++ {
			vi, xi := f64(val[idx]), f64(x[col[idx]])
			m, ok := t.roundHot(vi * xi)
			if !ok {
				m = k.mul(vi, xi)
			}
			v, ok := t.roundHot(s + m)
			if !ok {
				v = k.add(s, m)
			}
			s = v
		}
		y[i] = n64(s)
	}
}

func (k *valueKernels) trailingUpdate(nalpha Num, x, w []Num) {
	t := k.t
	a := f64(nalpha)
	for i := range x {
		xi := f64(x[i])
		m, ok := t.roundHot(a * xi)
		if !ok {
			m = k.mul(a, xi)
		}
		wi := f64(w[i])
		v, ok := t.roundHot(m + wi)
		if !ok {
			v = k.add(m, wi)
		}
		w[i] = n64(v)
	}
}

// The fast formats dispatch to the table engine when eligible (ek set;
// see exact.go) and to the roundTables engine otherwise.

func (p fastPosit) DotKernel(x, y []Num) Num {
	if p.ek != nil {
		return p.ek.dot(x, y)
	}
	return p.kern.dot(x, y)
}
func (p fastPosit) AxpyKernel(alpha Num, x, y []Num) {
	if p.ek != nil {
		p.ek.fma(f64(alpha), x, y, y)
		return
	}
	p.kern.axpy(alpha, x, y)
}
func (p fastPosit) ScaleKernel(alpha Num, x []Num) {
	if p.ek != nil {
		p.ek.scale(alpha, x)
		return
	}
	p.kern.scale(alpha, x)
}
func (p fastPosit) MulAddKernel(a Num, x, y, dst []Num) {
	if p.ek != nil {
		p.ek.fma(f64(a), x, y, dst)
		return
	}
	p.kern.mulAdd(a, x, y, dst)
}
func (p fastPosit) MatVecKernel(rowPtr, col []int, val []Num, x, y []Num) {
	if p.ek != nil {
		p.ek.matVec(rowPtr, col, val, x, y)
		return
	}
	p.kern.matVec(rowPtr, col, val, x, y)
}
func (p fastPosit) TrailingUpdateKernel(nalpha Num, x, w []Num) {
	if p.ek != nil {
		p.ek.fma(f64(nalpha), x, w, w)
		return
	}
	p.kern.trailingUpdate(nalpha, x, w)
}
func (p fastPosit) DivKernel(alpha Num, x []Num) {
	if p.ek != nil {
		p.ek.divK(alpha, x)
		return
	}
	for i := range x {
		x[i] = p.Div(x[i], alpha)
	}
}

func (m fastMini) DotKernel(x, y []Num) Num {
	if m.ek != nil {
		return m.ek.dot(x, y)
	}
	return m.kern.dot(x, y)
}
func (m fastMini) AxpyKernel(alpha Num, x, y []Num) {
	if m.ek != nil {
		m.ek.fma(f64(alpha), x, y, y)
		return
	}
	m.kern.axpy(alpha, x, y)
}
func (m fastMini) ScaleKernel(alpha Num, x []Num) {
	if m.ek != nil {
		m.ek.scale(alpha, x)
		return
	}
	m.kern.scale(alpha, x)
}
func (m fastMini) MulAddKernel(a Num, x, y, dst []Num) {
	if m.ek != nil {
		m.ek.fma(f64(a), x, y, dst)
		return
	}
	m.kern.mulAdd(a, x, y, dst)
}
func (m fastMini) MatVecKernel(rowPtr, col []int, val []Num, x, y []Num) {
	if m.ek != nil {
		m.ek.matVec(rowPtr, col, val, x, y)
		return
	}
	m.kern.matVec(rowPtr, col, val, x, y)
}
func (m fastMini) TrailingUpdateKernel(nalpha Num, x, w []Num) {
	if m.ek != nil {
		m.ek.fma(f64(nalpha), x, w, w)
		return
	}
	m.kern.trailingUpdate(nalpha, x, w)
}
func (m fastMini) DivKernel(alpha Num, x []Num) {
	if m.ek != nil {
		m.ek.divK(alpha, x)
		return
	}
	for i := range x {
		x[i] = m.Div(x[i], alpha)
	}
}

// --- native kernels (hardware formats) ---
//
// float64 and float32 round natively, so their kernels are plain
// loops. Explicit conversions pin every intermediate to one rounding
// (the Go spec otherwise permits fusing x*y+z into an FMA).

func (f float64Format) DotKernel(x, y []Num) Num {
	s := 0.0
	for i := range x {
		s += float64(f64(x[i]) * f64(y[i]))
	}
	return n64(s)
}

func (f float64Format) AxpyKernel(alpha Num, x, y []Num) {
	a := f64(alpha)
	for i := range x {
		y[i] = n64(f64(y[i]) + float64(a*f64(x[i])))
	}
}

func (f float64Format) ScaleKernel(alpha Num, x []Num) {
	a := f64(alpha)
	for i := range x {
		x[i] = n64(a * f64(x[i]))
	}
}

func (f float64Format) MulAddKernel(alpha Num, x, y, dst []Num) {
	a := f64(alpha)
	for i := range x {
		dst[i] = n64(float64(a*f64(x[i])) + f64(y[i]))
	}
}

func (f float64Format) MatVecKernel(rowPtr, col []int, val []Num, x, y []Num) {
	for i := 0; i+1 < len(rowPtr); i++ {
		s := 0.0
		for idx := rowPtr[i]; idx < rowPtr[i+1]; idx++ {
			s += float64(f64(val[idx]) * f64(x[col[idx]]))
		}
		y[i] = n64(s)
	}
}

func (f float64Format) TrailingUpdateKernel(nalpha Num, x, w []Num) {
	a := f64(nalpha)
	for i := range x {
		w[i] = n64(float64(a*f64(x[i])) + f64(w[i]))
	}
}

func (f float64Format) DivKernel(alpha Num, x []Num) {
	a := f64(alpha)
	for i := range x {
		x[i] = n64(f64(x[i]) / a)
	}
}

func (f float32Format) DotKernel(x, y []Num) Num {
	s := float32(0)
	for i := range x {
		s += float32(f32(x[i]) * f32(y[i]))
	}
	return n32(s)
}

func (f float32Format) AxpyKernel(alpha Num, x, y []Num) {
	a := f32(alpha)
	for i := range x {
		y[i] = n32(f32(y[i]) + float32(a*f32(x[i])))
	}
}

func (f float32Format) ScaleKernel(alpha Num, x []Num) {
	a := f32(alpha)
	for i := range x {
		x[i] = n32(a * f32(x[i]))
	}
}

func (f float32Format) MulAddKernel(alpha Num, x, y, dst []Num) {
	a := f32(alpha)
	for i := range x {
		dst[i] = n32(float32(a*f32(x[i])) + f32(y[i]))
	}
}

func (f float32Format) MatVecKernel(rowPtr, col []int, val []Num, x, y []Num) {
	for i := 0; i+1 < len(rowPtr); i++ {
		s := float32(0)
		for idx := rowPtr[i]; idx < rowPtr[i+1]; idx++ {
			s += float32(f32(val[idx]) * f32(x[col[idx]]))
		}
		y[i] = n32(s)
	}
}

func (f float32Format) TrailingUpdateKernel(nalpha Num, x, w []Num) {
	a := f32(nalpha)
	for i := range x {
		w[i] = n32(float32(a*f32(x[i])) + f32(w[i]))
	}
}

func (f float32Format) DivKernel(alpha Num, x []Num) {
	a := f32(alpha)
	for i := range x {
		x[i] = n32(f32(x[i]) / a)
	}
}
