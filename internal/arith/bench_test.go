package arith_test

import (
	"testing"

	"positlab/internal/arith"
	"positlab/internal/minifloat"
	"positlab/internal/posit"
)

// Fast vs slow implementations on the same operand stream: the speedup
// that justifies the value-domain formats (README "Architecture").
func benchFormat(b *testing.B, f arith.Format) {
	vals := make([]arith.Num, 256)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v := float64(int64(x%2000)-1000) / 97
		vals[i] = f.FromFloat64(v)
	}
	var sink arith.Num
	b.Run("add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = f.Add(vals[i&255], vals[(i+7)&255])
		}
	})
	b.Run("mul", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = f.Mul(vals[i&255], vals[(i+7)&255])
		}
	})
	b.Run("div", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = f.Div(vals[i&255], vals[(i+7)&255])
		}
	})
	sinkNum = sink
}

var sinkNum arith.Num

func BenchmarkFastPosit32(b *testing.B) { benchFormat(b, arith.Posit32e2) }
func BenchmarkSlowPosit32(b *testing.B) { benchFormat(b, arith.Posit(posit.Posit32e2)) }
func BenchmarkFastPosit16(b *testing.B) { benchFormat(b, arith.Posit16e2) }
func BenchmarkSlowPosit16(b *testing.B) { benchFormat(b, arith.Posit(posit.Posit16e2)) }
func BenchmarkFastFloat16(b *testing.B) { benchFormat(b, arith.Float16) }
func BenchmarkSlowFloat16(b *testing.B) {
	benchFormat(b, arith.Mini(minifloat.Float16, "Float16"))
}
func BenchmarkNativeFloat64(b *testing.B) { benchFormat(b, arith.Float64) }
func BenchmarkNativeFloat32(b *testing.B) { benchFormat(b, arith.Float32) }

// Table-build cost: what the first use of a 16-bit format pays (once
// per process, or once ever with the on-disk cache). The reported
// table-bytes metric is the resident footprint per format.
var sinkTables *arith.Tables

func BenchmarkTableBuildPosit16e2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables = arith.LoadOrBuildPositTablesForTest("", posit.Posit16e2)
	}
	b.ReportMetric(float64(sinkTables.MemBytes()), "table-bytes")
}

func BenchmarkTableBuildFloat16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables = arith.BuildMiniTablesForTest(minifloat.Float16)
	}
	b.ReportMetric(float64(sinkTables.MemBytes()), "table-bytes")
}
