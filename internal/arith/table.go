package arith

import (
	"fmt"
	"math"

	"positlab/internal/minifloat"
	"positlab/internal/posit"
)

const signBit64 = uint64(1) << 63

// Tables is the exhaustive lookup-table engine for a format of at most
// 16 bits. Every pattern's value fits a 65536-entry float64 decode
// table, every rounding decision reduces to a search in a sorted
// boundary table indexed off the float64 bit pattern, and the unary
// operations (square root, reciprocal) become single indexed loads —
// the way posit hardware and SoftPosit-style libraries realize narrow
// formats. All tables are derived from the exact integer pipelines, so
// results are bit-identical by construction (and proven so by the
// exhaustive differential tests in table_test.go).
//
// A Tables is immutable after construction and safe for concurrent
// use. Obtain one through TablesOf, which builds lazily behind the
// process-wide registry in tablereg.go.
type Tables struct {
	spec  string
	width int
	ieee  bool

	maxPat  uint32 // largest positive finite pattern
	patMask uint16 // width-bit mask
	signPat uint16 // IEEE sign bit (== the -0 pattern); posit: NaR
	nanPat  uint16 // canonical NaN / NaR pattern
	infPat  uint16 // IEEE +Inf pattern (unused for posits)

	// decode[p] is the exact float64 value of pattern p (every value of
	// a <=16-bit format embeds exactly in float64).
	decode []float64
	// cut[p] for p in 1..maxPat is the float64 bit pattern of the
	// rounding boundary between positive patterns p-1 and p: magnitudes
	// strictly between cut[p] and cut[p+1] round to p. cut[maxPat+1] is
	// the overflow threshold (IEEE: midpoint to the next power of two,
	// beyond which results are +Inf; posit: +Inf bits, since posits
	// clamp to maxpos). cut[0] = 0 anchors the search. Positive
	// patterns are value-ordered in both systems and float64 bits are
	// value-ordered for positive floats, so the table is sorted and the
	// locate step is a branch-predictable binary search — no bit-
	// pattern pipeline anywhere.
	cut []uint64
	// maxFinBits is math.Float64bits(decode[maxPat]) — the bit-domain
	// overflow check on the kernel hot paths.
	maxFinBits uint64
	// sqrt[p] and recip[p] are the full unary op tables over all
	// patterns, including negatives and specials: sqrt[p] = Sqrt(p) and
	// recip[p] = Div(One, p) in the exact pipeline.
	sqrt  []uint16
	recip []uint16

	// O(1) exact-value encode: at scale s with fb[s-minScale] >= 1
	// explicit fraction bits, patterns are contiguous within the binade
	// and the pattern of a format value 2^s·(1+m/2^fb) is
	// patBase[s-minScale] + m. (patBase is the pattern of 2^s.)
	minScale int
	fb       []int8
	patBase  []uint16

	// dropByE[e] for a float64 biased exponent e: the number of
	// mantissa bits to discard when rounding a magnitude with that
	// exponent, or 0 for scales the hot path must not handle inline
	// (specials, region scales, out of range). Derived from fb; indexes
	// the raw exponent field directly so the kernel loops do one load
	// instead of a range check plus a signed index.
	dropByE [2048]uint8
}

// finalize derives the redundant hot-path tables; called after both
// builders and after a cache load.
func (t *Tables) finalize() {
	for i, b := range t.fb {
		if b >= 1 {
			t.dropByE[t.minScale+i+1023] = uint8(52 - int(b))
		}
	}
}

// positSpec and miniSpec are the registry/cache identities of a format
// configuration. They name the rounding semantics completely.
func positSpec(c posit.Config) string { return fmt.Sprintf("posit%de%d", c.N(), c.ES()) }

func miniSpec(f minifloat.Format) string {
	return fmt.Sprintf("mini_e%dm%d", f.ExpBits(), f.FracBits())
}

// buildPositTables derives the LUT engine for a posit format of width
// <= 16 from the integer pipeline.
func buildPositTables(c posit.Config) *Tables {
	w := c.N()
	t := &Tables{
		spec:     positSpec(c),
		width:    w,
		maxPat:   uint32(c.MaxPos()),
		patMask:  uint16(1<<uint(w) - 1),
		signPat:  uint16(c.NaR()),
		nanPat:   uint16(c.NaR()),
		minScale: c.MinScale(),
	}
	size := 1 << uint(w)
	t.decode = make([]float64, size)
	for p := 0; p < size; p++ {
		t.decode[p] = c.ToFloat64(posit.Bits(p))
	}
	// Rounding boundaries: the (w+1)-bit posit pattern 2p-1 decodes to
	// the pipeline's boundary between positive patterns p-1 and p (the
	// pattern-space midpoint; in binades with explicit fraction bits it
	// coincides with the arithmetic midpoint). Exact in float64: at
	// most w-1 significand bits, scales within ±(w-1)·2^es.
	cx := posit.MustNew(w+1, c.ES())
	t.cut = make([]uint64, t.maxPat+2)
	for p := uint32(1); p <= t.maxPat; p++ {
		t.cut[p] = math.Float64bits(cx.ToFloat64(posit.Bits(2*p - 1)))
	}
	// Posits never round a real result past maxpos (clamp, not NaR),
	// so the overflow threshold sits at infinity.
	t.cut[t.maxPat+1] = math.Float64bits(math.Inf(1))
	t.maxFinBits = math.Float64bits(t.decode[t.maxPat])
	t.sqrt = make([]uint16, size)
	t.recip = make([]uint16, size)
	one := c.One()
	for p := 0; p < size; p++ {
		t.sqrt[p] = uint16(c.Sqrt(posit.Bits(p)))
		t.recip[p] = uint16(c.Div(one, posit.Bits(p)))
	}
	maxS := c.MaxScale()
	t.fb = make([]int8, maxS-t.minScale+1)
	t.patBase = make([]uint16, len(t.fb))
	for s := t.minScale; s <= maxS; s++ {
		i := s - t.minScale
		t.fb[i] = int8(rawFracBits(c, s))
		if t.fb[i] >= 1 {
			t.patBase[i] = uint16(c.FromFloat64(math.Ldexp(1, s)))
		}
	}
	t.finalize()
	return t
}

// buildMiniTables derives the LUT engine for an IEEE small format of
// width <= 16 from the minifloat integer pipeline.
func buildMiniTables(f minifloat.Format) *Tables {
	w := f.Width()
	frac := f.FracBits()
	t := &Tables{
		spec:     miniSpec(f),
		width:    w,
		ieee:     true,
		maxPat:   uint32(f.MaxFinite()),
		patMask:  uint16(1<<uint(w) - 1),
		signPat:  uint16(f.NegZero()),
		nanPat:   uint16(f.NaN()),
		infPat:   uint16(f.PosInf()),
		minScale: f.Emin() - frac, // scale of the smallest subnormal
	}
	size := 1 << uint(w)
	t.decode = make([]float64, size)
	for p := 0; p < size; p++ {
		t.decode[p] = f.ToFloat64(minifloat.Bits(p))
	}
	// IEEE boundaries are arithmetic midpoints of adjacent values —
	// exact in float64 (one extra significand bit).
	t.cut = make([]uint64, t.maxPat+2)
	for p := uint32(1); p <= t.maxPat; p++ {
		t.cut[p] = math.Float64bits((t.decode[p-1] + t.decode[p]) / 2)
	}
	// Overflow threshold: magnitudes at or beyond the midpoint of
	// maxFinite and 2^(emax+1) round to infinity (ties land on the even
	// side, which is the Inf pattern).
	maxS := f.Emax()
	t.cut[t.maxPat+1] = math.Float64bits((t.decode[t.maxPat] + math.Ldexp(1, maxS+1)) / 2)
	t.maxFinBits = math.Float64bits(t.decode[t.maxPat])
	t.sqrt = make([]uint16, size)
	t.recip = make([]uint16, size)
	one := f.One()
	for p := 0; p < size; p++ {
		t.sqrt[p] = uint16(f.Sqrt(minifloat.Bits(p)))
		t.recip[p] = uint16(f.Div(one, minifloat.Bits(p)))
	}
	t.fb = make([]int8, maxS-t.minScale+1)
	t.patBase = make([]uint16, len(t.fb))
	for s := t.minScale; s <= maxS; s++ {
		i := s - t.minScale
		b := frac
		if s < f.Emin() {
			b = s - (f.Emin() - frac)
		}
		t.fb[i] = int8(b)
		if b >= 1 {
			t.patBase[i] = uint16(f.FromFloat64(math.Ldexp(1, s)))
		}
	}
	t.finalize()
	return t
}

// Tie-op codes for the boundary-hit resolvers: how roundPat decides a
// result that lands exactly on a rounding boundary. Landing exactly on
// a boundary is the only case where the float64 image of a result does
// not determine the rounding — everywhere else the true result
// provably sits on the same side of the (float64-representable)
// boundary as its correctly rounded image (see exact.go).
const (
	tieExact uint8 = iota // r is the exact result: a hit is a genuine tie → even pattern
	tieSum                // r = fl(x+y): resolve by the TwoSum residual
	tieDiv                // r = fl(x/y): resolve by the FMA remainder against y
	tieSqrt               // r = fl(√x):  resolve by the FMA remainder of r²
)

// boundaryTie returns which side of the boundary the exact result is
// on, in magnitude terms: -1 below, +1 above, 0 exactly on it (a
// genuine tie).
func boundaryTie(op uint8, x, y, r float64) int {
	var s float64
	switch op {
	case tieSum:
		// Knuth TwoSum: the residual e with x+y = r+e exactly. Only the
		// sign matters, and the residual of a correctly rounded sum is
		// exact in float64.
		bv := r - x
		s = (x - (r - bv)) + (y - bv)
	case tieDiv:
		// exact - r = (x - r·y)/y: the sign of -FMA(r,y,-x) flipped by
		// the sign of y.
		s = -math.FMA(r, y, -x)
		if y < 0 {
			s = -s
		}
	case tieSqrt:
		// exact - r has the sign of x - r².
		s = -math.FMA(r, r, -x)
	default: // tieExact
		return 0
	}
	if s == 0 {
		return 0
	}
	// s is signed like (exact - r) in value terms; the magnitude
	// direction flips for negative r.
	if (s > 0) == (r > 0) {
		return 1
	}
	return -1
}

// locate returns the positive pattern whose rounding interval contains
// the magnitude with float64 bits a (0 < value < ∞). For IEEE formats
// the result can be maxPat+1, meaning overflow to infinity; posits
// clamp to maxpos and never round a nonzero magnitude to zero.
func (t *Tables) locate(a uint64, op uint8, x, y, r float64) uint32 {
	cut := t.cut
	lo, hi := uint32(0), uint32(len(cut)-1)
	for lo < hi {
		m := (lo + hi + 1) >> 1
		if cut[m] <= a {
			lo = m
		} else {
			hi = m - 1
		}
	}
	p := lo
	if p > 0 && cut[p] == a {
		// Exactly on the boundary between p-1 and p.
		switch s := boundaryTie(op, x, y, r); {
		case s < 0:
			p--
		case s == 0 && p&1 == 1:
			p-- // genuine tie: the even pattern of {p-1, p}
		}
	}
	if !t.ieee {
		if p > t.maxPat {
			p = t.maxPat
		}
		if p == 0 {
			p = 1
		}
	}
	return p
}

// pattern applies the sign to a positive pattern: IEEE sets the sign
// bit, posits take the two's complement.
func (t *Tables) pattern(p uint32, neg bool) uint16 {
	if !neg {
		return uint16(p)
	}
	if t.ieee {
		return uint16(p) | t.signPat
	}
	return uint16(-p) & t.patMask
}

// roundPat rounds any float64 into the format's pattern space with the
// format's own special-value semantics (NaR/NaN/Inf, signed zeros,
// clamping). op names how to resolve an exact boundary hit; x and y
// are the tie resolver's operands (ignored for tieExact).
func (t *Tables) roundPat(r float64, op uint8, x, y float64) uint16 {
	if r == 0 {
		if t.ieee && math.Signbit(r) {
			return t.signPat
		}
		return 0
	}
	if math.IsNaN(r) {
		return t.nanPat
	}
	neg := math.Signbit(r)
	if math.IsInf(r, 0) {
		if !t.ieee {
			return t.nanPat // posit: infinite intermediates are NaR
		}
		return t.pattern(uint32(t.infPat), neg)
	}
	p := t.locate(math.Float64bits(r)&^signBit64, op, x, y, r)
	if t.ieee && p > t.maxPat {
		p = uint32(t.infPat)
	}
	return t.pattern(p, neg)
}

// roundFrom is roundPat composed with the decode table: the rounded
// result as a float64 value, for the value-domain fast formats.
func (t *Tables) roundFrom(r float64, op uint8, x, y float64) float64 {
	return t.decode[t.roundPat(r, op, x, y)]
}

// exactPat returns the positive pattern of a value the format
// represents exactly (0 < value, finite), given its float64 bits.
// O(1) in binades with explicit fraction bits, boundary search
// elsewhere (the few patterns at the range ends).
func (t *Tables) exactPat(a uint64) uint32 {
	idx := int(a>>52) - 1023 - t.minScale
	if uint(idx) < uint(len(t.fb)) {
		if b := int(t.fb[idx]); b >= 1 {
			kept := (a & (1<<52 - 1)) >> uint(52-b)
			return uint32(t.patBase[idx]) + uint32(kept)
		}
	}
	return t.locate(a, tieExact, 0, 0, 0)
}

// Spec returns the format identity the tables were built for.
func (t *Tables) Spec() string { return t.spec }

// Width returns the format's encoding width in bits.
func (t *Tables) Width() int { return t.width }

// MemBytes returns the resident size of the tables, for capacity
// planning and the benchmark report.
func (t *Tables) MemBytes() int {
	return len(t.decode)*8 + len(t.cut)*8 + (len(t.sqrt)+len(t.recip)+len(t.patBase))*2 + len(t.fb)
}

// Decode returns the exact float64 value of pattern p.
func (t *Tables) Decode(p uint16) float64 { return t.decode[p&t.patMask] }

// Encode rounds an arbitrary float64 into the format's canonical
// pattern. An external float64 is its own exact value, so a boundary
// hit is a genuine tie (round to even pattern) — bit-identical to the
// integer pipeline's FromFloat64.
func (t *Tables) Encode(x float64) uint16 { return t.roundPat(x, tieExact, 0, 0) }

// SqrtPat returns the tabulated Sqrt(p) in pattern space.
func (t *Tables) SqrtPat(p uint16) uint16 { return t.sqrt[p&t.patMask] }

// RecipPat returns the tabulated Div(One, p) in pattern space.
func (t *Tables) RecipPat(p uint16) uint16 { return t.recip[p&t.patMask] }
