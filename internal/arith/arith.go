// Package arith presents every number format in the study — native
// IEEE float64/float32, software Float16/BFloat16, and Posit(n,es) —
// behind one interface of operations on opaque uint64 bit patterns, so
// each solver is written once and runs identically under any format.
// This mirrors the paper's methodology ("one algorithm specification to
// test each different arithmetic format", §IV-A).
package arith

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"positlab/internal/minifloat"
	"positlab/internal/posit"
)

// Num is a value in some Format, stored as a bit pattern. A Num is only
// meaningful together with the Format that produced it.
type Num uint64

// Format is finite-precision real arithmetic over bit patterns. All
// operations are correctly rounded in the respective format.
type Format interface {
	Name() string

	FromFloat64(float64) Num
	ToFloat64(Num) float64

	Add(a, b Num) Num
	Sub(a, b Num) Num
	Mul(a, b Num) Num
	Div(a, b Num) Num
	Sqrt(a Num) Num
	Neg(a Num) Num

	// MulAdd returns fl(fl(a·b) + c): the product rounded in the
	// format, then the sum rounded in the format — exactly
	// Add(Mul(a, b), c) in one call. It is the solvers' ubiquitous
	// inner-loop pair (dot products, axpy updates, factorization
	// updates); fusing it into one dispatch halves the per-element
	// interface cost without changing a single rounding.
	MulAdd(a, b, c Num) Num

	Zero() Num
	One() Num

	// IsZero reports a zero pattern.
	IsZero(Num) bool
	// Bad reports an exceptional value: posit NaR, IEEE NaN or ±Inf.
	// Solvers treat it as "arithmetic error encountered", the '-'
	// entries of Table II.
	Bad(Num) bool
	// Less is an ordered value comparison (false when either side is
	// exceptional).
	Less(a, b Num) bool

	// Eps returns the unit roundoff at 1.0 (half the relative gap).
	Eps() float64
	// MaxValue returns the largest finite representable magnitude.
	MaxValue() float64
}

// --- float64 (native) ---

type float64Format struct{}

// Float64 is native IEEE binary64, the paper's working/reference
// precision.
var Float64 Format = float64Format{}

func (float64Format) Name() string              { return "Float64" }
func (float64Format) FromFloat64(x float64) Num { return Num(math.Float64bits(x)) }
func (float64Format) ToFloat64(a Num) float64   { return math.Float64frombits(uint64(a)) }

func f64(a Num) float64 { return math.Float64frombits(uint64(a)) }
func n64(x float64) Num { return Num(math.Float64bits(x)) }

func (float64Format) Add(a, b Num) Num  { return n64(f64(a) + f64(b)) }
func (float64Format) Sub(a, b Num) Num  { return n64(f64(a) - f64(b)) }
func (float64Format) Mul(a, b Num) Num  { return n64(f64(a) * f64(b)) }
func (float64Format) Div(a, b Num) Num  { return n64(f64(a) / f64(b)) }
func (float64Format) MulAdd(a, b, c Num) Num {
	// The explicit conversion forces the product to round before the
	// add (the Go spec permits fusing x*y+z into an FMA otherwise).
	p := float64(f64(a) * f64(b))
	return n64(p + f64(c))
}
func (float64Format) Sqrt(a Num) Num    { return n64(math.Sqrt(f64(a))) }
func (float64Format) Neg(a Num) Num     { return n64(-f64(a)) }
func (float64Format) Zero() Num         { return n64(0) }
func (float64Format) One() Num          { return n64(1) }
func (float64Format) IsZero(a Num) bool { return f64(a) == 0 }
func (float64Format) Bad(a Num) bool {
	v := f64(a)
	return math.IsNaN(v) || math.IsInf(v, 0)
}
func (float64Format) Less(a, b Num) bool { return f64(a) < f64(b) }
func (float64Format) Eps() float64       { return 0x1p-53 }
func (float64Format) MaxValue() float64  { return math.MaxFloat64 }

// --- float32 (native) ---

type float32Format struct{}

// Float32 is native IEEE binary32. Go's float32 operations are single
// operations with one rounding each, per the language spec.
var Float32 Format = float32Format{}

func f32(a Num) float32 { return math.Float32frombits(uint32(a)) }
func n32(x float32) Num { return Num(math.Float32bits(x)) }

func (float32Format) Name() string              { return "Float32" }
func (float32Format) FromFloat64(x float64) Num { return n32(float32(x)) }
func (float32Format) ToFloat64(a Num) float64   { return float64(f32(a)) }
func (float32Format) Add(a, b Num) Num          { return n32(f32(a) + f32(b)) }
func (float32Format) Sub(a, b Num) Num          { return n32(f32(a) - f32(b)) }
func (float32Format) Mul(a, b Num) Num          { return n32(f32(a) * f32(b)) }
func (float32Format) Div(a, b Num) Num          { return n32(f32(a) / f32(b)) }
func (float32Format) MulAdd(a, b, c Num) Num {
	p := float32(f32(a) * f32(b)) // explicit conversion: no FMA fusing
	return n32(p + f32(c))
}
func (float32Format) Sqrt(a Num) Num {
	// math.Sqrt is correctly rounded to 53 bits; rounding that to 24
	// bits is innocuous (53 >= 2*24+2).
	return n32(float32(math.Sqrt(float64(f32(a)))))
}
func (float32Format) Neg(a Num) Num     { return n32(-f32(a)) }
func (float32Format) Zero() Num         { return n32(0) }
func (float32Format) One() Num          { return n32(1) }
func (float32Format) IsZero(a Num) bool { return f32(a) == 0 }
func (float32Format) Bad(a Num) bool {
	v := f32(a)
	return v != v || math.IsInf(float64(v), 0)
}
func (float32Format) Less(a, b Num) bool { return f32(a) < f32(b) }
func (float32Format) Eps() float64       { return 0x1p-24 }
func (float32Format) MaxValue() float64  { return math.MaxFloat32 }

// --- minifloat-backed formats ---

type miniFormat struct {
	f    minifloat.Format
	name string
}

// Mini wraps a minifloat format through its integer pipeline — the
// reference implementation the fast value-domain formats are
// differentially tested against.
func Mini(f minifloat.Format, name string) Format { return miniFormat{f, name} }

// Float16 is IEEE binary16 (software, correctly rounded, fast
// value-domain implementation).
var Float16 = FastMini(minifloat.Float16, "Float16")

// BFloat16 is the brain-float extension format.
var BFloat16 = FastMini(minifloat.BFloat16, "BFloat16")

// FP8E5M2 and FP8E4M3 are 8-bit IEEE-style extension formats (the
// interchange variants with infinities and NaN), another data point on
// the tapered-vs-flat precision axis the paper explores at 16 bits.
var (
	FP8E5M2 = FastMini(minifloat.MustNew(5, 2), "FP8-E5M2")
	FP8E4M3 = FastMini(minifloat.MustNew(4, 3), "FP8-E4M3")
)

func (m miniFormat) Name() string              { return m.name }
func (m miniFormat) FromFloat64(x float64) Num { return Num(m.f.FromFloat64(x)) }
func (m miniFormat) ToFloat64(a Num) float64   { return m.f.ToFloat64(minifloat.Bits(a)) }
func (m miniFormat) Add(a, b Num) Num {
	return Num(m.f.Add(minifloat.Bits(a), minifloat.Bits(b)))
}
func (m miniFormat) Sub(a, b Num) Num {
	return Num(m.f.Sub(minifloat.Bits(a), minifloat.Bits(b)))
}
func (m miniFormat) Mul(a, b Num) Num {
	return Num(m.f.Mul(minifloat.Bits(a), minifloat.Bits(b)))
}
func (m miniFormat) Div(a, b Num) Num {
	return Num(m.f.Div(minifloat.Bits(a), minifloat.Bits(b)))
}
func (m miniFormat) MulAdd(a, b, c Num) Num { return m.Add(m.Mul(a, b), c) }
func (m miniFormat) Sqrt(a Num) Num         { return Num(m.f.Sqrt(minifloat.Bits(a))) }
func (m miniFormat) Neg(a Num) Num     { return Num(m.f.Neg(minifloat.Bits(a))) }
func (m miniFormat) Zero() Num         { return Num(m.f.Zero()) }
func (m miniFormat) One() Num          { return Num(m.f.One()) }
func (m miniFormat) IsZero(a Num) bool { return m.f.IsZero(minifloat.Bits(a)) }
func (m miniFormat) Bad(a Num) bool {
	p := minifloat.Bits(a)
	return m.f.IsNaN(p) || m.f.IsInf(p)
}
func (m miniFormat) Less(a, b Num) bool {
	return m.f.Less(minifloat.Bits(a), minifloat.Bits(b))
}
func (m miniFormat) Eps() float64 {
	return math.Ldexp(1, -(m.f.FracBits() + 1))
}
func (m miniFormat) MaxValue() float64 { return m.f.MaxValue() }

// --- posit-backed formats ---

type positFormat struct {
	c posit.Config
}

// Posit wraps a posit configuration as a Format through the integer
// pipeline — the reference implementation the fast value-domain
// formats are differentially tested against.
func Posit(c posit.Config) Format { return positFormat{c} }

// The paper's posit formats (fast value-domain implementations).
var (
	Posit16e1 = FastPosit(posit.Posit16e1)
	Posit16e2 = FastPosit(posit.Posit16e2)
	Posit32e2 = FastPosit(posit.Posit32e2)
	Posit32e3 = FastPosit(posit.Posit32e3)
)

func (p positFormat) Name() string {
	return fmt.Sprintf("Posit(%d,%d)", p.c.N(), p.c.ES())
}
func (p positFormat) FromFloat64(x float64) Num { return Num(p.c.FromFloat64(x)) }
func (p positFormat) ToFloat64(a Num) float64   { return p.c.ToFloat64(posit.Bits(a)) }
func (p positFormat) Add(a, b Num) Num          { return Num(p.c.Add(posit.Bits(a), posit.Bits(b))) }
func (p positFormat) Sub(a, b Num) Num          { return Num(p.c.Sub(posit.Bits(a), posit.Bits(b))) }
func (p positFormat) Mul(a, b Num) Num          { return Num(p.c.Mul(posit.Bits(a), posit.Bits(b))) }
func (p positFormat) Div(a, b Num) Num          { return Num(p.c.Div(posit.Bits(a), posit.Bits(b))) }
func (p positFormat) MulAdd(a, b, c Num) Num    { return p.Add(p.Mul(a, b), c) }
func (p positFormat) Sqrt(a Num) Num            { return Num(p.c.Sqrt(posit.Bits(a))) }
func (p positFormat) Neg(a Num) Num             { return Num(p.c.Neg(posit.Bits(a))) }
func (p positFormat) Zero() Num                 { return Num(p.c.Zero()) }
func (p positFormat) One() Num                  { return Num(p.c.One()) }
func (p positFormat) IsZero(a Num) bool         { return p.c.IsZero(posit.Bits(a)) }
func (p positFormat) Bad(a Num) bool            { return p.c.IsNaR(posit.Bits(a)) }
func (p positFormat) Less(a, b Num) bool {
	pa, pb := posit.Bits(a), posit.Bits(b)
	if p.c.IsNaR(pa) || p.c.IsNaR(pb) {
		return false
	}
	return p.c.Less(pa, pb)
}
func (p positFormat) Eps() float64 {
	return math.Ldexp(1, -(p.c.FracBitsAtScale(0) + 1))
}
func (p positFormat) MaxValue() float64 { return p.c.ToFloat64(p.c.MaxPos()) }

// Config exposes the underlying posit configuration of a posit-backed
// Format, for callers that need format internals (e.g. USEED).
func (p positFormat) Config() posit.Config { return p.c }

// PositConfig returns the posit.Config behind f and whether f is
// posit-backed (either implementation).
func PositConfig(f Format) (posit.Config, bool) {
	switch pf := f.(type) {
	case positFormat:
		return pf.c, true
	case fastPosit:
		return pf.c, true
	case table8Format:
		return pf.c, true
	}
	return posit.Config{}, false
}

// MiniConfig returns the minifloat.Format behind f and whether f is
// minifloat-backed (either implementation). Together with PositConfig
// it lets callers recover a value's canonical encoding from the
// value-domain fast formats, whose Num is a float64 image rather than
// the format's own bit pattern.
func MiniConfig(f Format) (minifloat.Format, bool) {
	switch mf := f.(type) {
	case miniFormat:
		return mf.f, true
	case fastMini:
		return mf.f, true
	}
	return minifloat.Format{}, false
}

// --- registry ---

var registry = map[string]Format{
	"float64":  Float64,
	"float32":  Float32,
	"float16":  Float16,
	"bfloat16": BFloat16,
	"fp8e5m2":  FP8E5M2,
	"fp8e4m3":  FP8E4M3,
}

func init() {
	for n := 8; n <= 32; n += 8 {
		for es := 0; es <= 4; es++ {
			c := posit.MustNew(n, es)
			registry[fmt.Sprintf("posit%des%d", n, es)] = FastPosit(c)
		}
	}
}

// ByName resolves a format by name: "float64", "float32", "float16",
// "bfloat16", or "posit<N>es<ES>" (e.g. "posit32es2"). Names are
// case-insensitive; "posit(32,2)" is accepted as an alias.
func ByName(name string) (Format, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	key = strings.NewReplacer("(", "", ")", "", ",", "es", " ", "").Replace(key)
	if f, ok := registry[key]; ok {
		return f, nil
	}
	names := make([]string, 0, len(registry))
	for k := range registry {
		names = append(names, k)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("arith: unknown format %q (known: %s)", name, strings.Join(names, ", "))
}

// Names returns every registered format name, sorted — the universe
// the differential kernel tests quantify over.
func Names() []string {
	names := make([]string, 0, len(registry))
	for k := range registry {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// MustByName is ByName that panics, for tests and tables of formats.
func MustByName(name string) Format {
	f, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return f
}

// Convert re-rounds a value from one format into another through
// float64, which is exact for every supported source format.
func Convert(from, to Format, a Num) Num {
	return to.FromFloat64(from.ToFloat64(a))
}

// FromFloat64Clamped converts x, clamping magnitudes beyond MaxValue to
// ±MaxValue instead of overflowing — the Table II loading rule ("if an
// entry is larger than the maximum representable value, round down to
// this value", following Higham's squeezing strategy). Posits clamp
// natively; IEEE formats need the explicit clamp to avoid ±Inf.
func FromFloat64Clamped(f Format, x float64) Num {
	if math.IsNaN(x) {
		return f.FromFloat64(x)
	}
	max := f.MaxValue()
	if x > max {
		x = max
	} else if x < -max {
		x = -max
	}
	return f.FromFloat64(x)
}
