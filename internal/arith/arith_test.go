package arith_test

import (
	"math"
	"testing"

	"positlab/internal/arith"
)

var allFormats = []arith.Format{
	arith.Float64, arith.Float32, arith.Float16, arith.BFloat16,
	arith.Posit16e1, arith.Posit16e2, arith.Posit32e2, arith.Posit32e3,
}

func TestBasicAlgebraAllFormats(t *testing.T) {
	for _, f := range allFormats {
		two := f.FromFloat64(2)
		three := f.FromFloat64(3)
		if got := f.ToFloat64(f.Add(two, three)); got != 5 {
			t.Errorf("%s: 2+3 = %g", f.Name(), got)
		}
		if got := f.ToFloat64(f.Mul(two, three)); got != 6 {
			t.Errorf("%s: 2*3 = %g", f.Name(), got)
		}
		if got := f.ToFloat64(f.Sub(two, three)); got != -1 {
			t.Errorf("%s: 2-3 = %g", f.Name(), got)
		}
		if got := f.ToFloat64(f.Div(three, two)); got != 1.5 {
			t.Errorf("%s: 3/2 = %g", f.Name(), got)
		}
		if got := f.ToFloat64(f.Sqrt(f.FromFloat64(9))); got != 3 {
			t.Errorf("%s: sqrt(9) = %g", f.Name(), got)
		}
		if got := f.ToFloat64(f.Neg(two)); got != -2 {
			t.Errorf("%s: -2 = %g", f.Name(), got)
		}
		if !f.IsZero(f.Zero()) || f.ToFloat64(f.One()) != 1 {
			t.Errorf("%s: zero/one wrong", f.Name())
		}
		if !f.Less(two, three) || f.Less(three, two) {
			t.Errorf("%s: ordering wrong", f.Name())
		}
		if f.Bad(two) {
			t.Errorf("%s: 2 reported exceptional", f.Name())
		}
		if !f.Bad(f.Div(f.One(), f.Zero())) {
			t.Errorf("%s: 1/0 not exceptional", f.Name())
		}
		if f.Eps() <= 0 || f.Eps() >= 1 {
			t.Errorf("%s: eps = %g out of range", f.Name(), f.Eps())
		}
		if f.MaxValue() <= 1 {
			t.Errorf("%s: MaxValue = %g", f.Name(), f.MaxValue())
		}
	}
}

func TestEpsValues(t *testing.T) {
	cases := []struct {
		f    arith.Format
		want float64
	}{
		{arith.Float64, 0x1p-53},
		{arith.Float32, 0x1p-24},
		{arith.Float16, 0x1p-11},
		// posit(32,2) near one: 27 fraction bits -> eps 2^-28 = 3.73e-9 (§II-B).
		{arith.Posit32e2, 0x1p-28},
		// posit(16,2): 11 frac bits near 1 -> 2^-12.
		{arith.Posit16e2, 0x1p-12},
	}
	for _, tc := range cases {
		if got := tc.f.Eps(); got != tc.want {
			t.Errorf("%s eps = %g, want %g", tc.f.Name(), got, tc.want)
		}
	}
}

func TestMaxValues(t *testing.T) {
	if got := arith.Float16.MaxValue(); got != 65504 {
		t.Errorf("Float16 max = %g", got)
	}
	// posit(16,2) maxpos = 2^56.
	if got := arith.Posit16e2.MaxValue(); got != math.Ldexp(1, 56) {
		t.Errorf("posit(16,2) max = %g, want 2^56", got)
	}
	// posit(32,2) maxpos = 2^120.
	if got := arith.Posit32e2.MaxValue(); got != math.Ldexp(1, 120) {
		t.Errorf("posit(32,2) max = %g, want 2^120", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"float64", "Float32", "float16", "bfloat16", "posit32es2", "Posit(32,2)", "posit(16, 1)"} {
		if _, err := arith.ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := arith.ByName("float128"); err == nil {
		t.Error("ByName(float128) must fail")
	}
	if f := arith.MustByName("posit(32,2)"); f.Name() != "Posit(32,2)" {
		t.Errorf("alias resolved to %s", f.Name())
	}
}

func TestConvertAndClamp(t *testing.T) {
	// posit32 value 1e10 converts to Float16 as clamped max.
	p := arith.Posit32e2.FromFloat64(1e10)
	got := arith.Convert(arith.Posit32e2, arith.Float16, p)
	if !arith.Float16.Bad(got) {
		t.Error("unclamped conversion of 1e10 to Float16 should overflow to Inf")
	}
	clamped := arith.FromFloat64Clamped(arith.Float16, 1e10)
	if v := arith.Float16.ToFloat64(clamped); v != 65504 {
		t.Errorf("clamped conversion = %g, want 65504", v)
	}
	neg := arith.FromFloat64Clamped(arith.Float16, math.Inf(-1))
	if v := arith.Float16.ToFloat64(neg); v != -65504 {
		t.Errorf("clamped -Inf = %g, want -65504", v)
	}
	// Posit clamps natively: no Bad value from huge input.
	if arith.Posit16e2.Bad(arith.Posit16e2.FromFloat64(1e300)) {
		t.Error("posit conversion of 1e300 must clamp to maxpos, not NaR")
	}
	// NaN stays exceptional under clamping.
	if !arith.Float16.Bad(arith.FromFloat64Clamped(arith.Float16, math.NaN())) {
		t.Error("clamped NaN must remain NaN")
	}
	// Round-trip through Convert for exact values.
	x := arith.Float16.FromFloat64(0.5)
	y := arith.Convert(arith.Float16, arith.Posit16e2, x)
	if arith.Posit16e2.ToFloat64(y) != 0.5 {
		t.Error("convert 0.5 Float16->posit16 failed")
	}
}

func TestPositConfigAccessor(t *testing.T) {
	c, ok := arith.PositConfig(arith.Posit16e2)
	if !ok || c.N() != 16 || c.ES() != 2 {
		t.Error("PositConfig(posit16e2) wrong")
	}
	if _, ok := arith.PositConfig(arith.Float32); ok {
		t.Error("PositConfig(float32) must report false")
	}
}
