package arith_test

import (
	"sync"
	"testing"

	"positlab/internal/arith"
)

func TestInstrumentCountsAndTransparency(t *testing.T) {
	f, counts := arith.Instrument(arith.Posit16e2)
	a := f.FromFloat64(2)
	b := f.FromFloat64(3)
	sum := f.Add(a, b)
	prod := f.Mul(a, b)
	_ = f.Sub(sum, prod)
	_ = f.Div(prod, a)
	_ = f.Sqrt(prod)
	if counts.Conv != 2 || counts.Add != 1 || counts.Mul != 1 || counts.Sub != 1 || counts.Div != 1 || counts.Sqrt != 1 {
		t.Fatalf("counts = %+v", *counts)
	}
	if counts.Total() != 5 {
		t.Fatalf("total = %d", counts.Total())
	}
	// Transparency: results identical to the raw format.
	raw := arith.Posit16e2
	if f.ToFloat64(sum) != raw.ToFloat64(raw.Add(raw.FromFloat64(2), raw.FromFloat64(3))) {
		t.Fatal("instrumented result differs")
	}
	if f.Name() != raw.Name() || f.Eps() != raw.Eps() {
		t.Fatal("passthrough metadata differs")
	}
}

func TestInstrumentAtomicConcurrent(t *testing.T) {
	var c arith.AtomicOpCounts
	f := arith.InstrumentAtomic(arith.Posit16e2, &c)
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := f.FromFloat64(2)
			b := f.FromFloat64(3)
			for i := 0; i < perG; i++ {
				_ = f.Add(a, b)
				_ = f.Mul(a, b)
			}
			_ = f.Sub(a, b)
			_ = f.Div(a, b)
			_ = f.Sqrt(a)
		}()
	}
	wg.Wait()
	got := c.Snapshot()
	want := arith.OpCounts{
		Add: goroutines * perG, Mul: goroutines * perG,
		Sub: goroutines, Div: goroutines, Sqrt: goroutines,
		Conv: 2 * goroutines,
	}
	if got != want {
		t.Fatalf("counts = %+v, want %+v", got, want)
	}
	// Transparency: results identical to the raw format.
	raw := arith.Posit16e2
	if f.ToFloat64(f.Add(f.FromFloat64(2), f.FromFloat64(3))) !=
		raw.ToFloat64(raw.Add(raw.FromFloat64(2), raw.FromFloat64(3))) {
		t.Fatal("instrumented result differs")
	}
}
