package arith_test

import (
	"testing"

	"positlab/internal/arith"
)

func TestInstrumentCountsAndTransparency(t *testing.T) {
	f, counts := arith.Instrument(arith.Posit16e2)
	a := f.FromFloat64(2)
	b := f.FromFloat64(3)
	sum := f.Add(a, b)
	prod := f.Mul(a, b)
	_ = f.Sub(sum, prod)
	_ = f.Div(prod, a)
	_ = f.Sqrt(prod)
	if counts.Conv != 2 || counts.Add != 1 || counts.Mul != 1 || counts.Sub != 1 || counts.Div != 1 || counts.Sqrt != 1 {
		t.Fatalf("counts = %+v", *counts)
	}
	if counts.Total() != 5 {
		t.Fatalf("total = %d", counts.Total())
	}
	// Transparency: results identical to the raw format.
	raw := arith.Posit16e2
	if f.ToFloat64(sum) != raw.ToFloat64(raw.Add(raw.FromFloat64(2), raw.FromFloat64(3))) {
		t.Fatal("instrumented result differs")
	}
	if f.Name() != raw.Name() || f.Eps() != raw.Eps() {
		t.Fatal("passthrough metadata differs")
	}
}
