package arith

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"positlab/internal/faultfs"
	"positlab/internal/posit"
)

// The table-cache chaos suite persists a real marshaled table through
// randomized fault schedules and asserts the cache contract after
// each: a later read on a clean disk either fails (missing or
// detectably corrupt entry — rebuilt from scratch, which is always
// safe) or returns the table bit-identically. The SHA-256 trailer
// makes "wrong table served" impossible to miss.
//
// Reproduce a failure with the seed it prints:
//
//	POSITLAB_CHAOS_REPLAY=<seed> go test -run TestChaosTableCache ./internal/arith/

// chaosTableBody builds one real marshaled table body (posit<12,2> —
// big enough to span many write-granularity faults, cheap enough to
// build once).
func chaosTableBody(t testing.TB) ([]byte, string) {
	t.Helper()
	c, err := posit.New(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	return buildPositTables(c).marshalBinary(), positSpec(c)
}

func TestChaosTableCache(t *testing.T) {
	body, spec := chaosTableBody(t)
	opts := faultfs.OptionsFromEnv(300, t.Logf)
	opts.Horizon = 12 // the workload is short: one write + one read
	root := t.TempDir()
	var (
		dir    string
		wrote  bool
		runID  int
		before uint64
	)
	err := faultfs.Explore(opts,
		func(seed int64, fsys faultfs.FS) error {
			runID++
			dir = filepath.Join(root, fmt.Sprintf("s%06d", runID))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
			SetTableCacheFS(fsys)
			defer SetTableCacheFS(nil)
			before = TableCacheWriteErrors()
			wrote = false                    // a crash mid-write must not count as acked
			writeTableCache(dir, spec, body) // best-effort: failure counted, not returned
			wrote = TableCacheWriteErrors() == before
			// A read through the sick disk must never yield a wrong
			// table either.
			if got, err := readTableCache(dir, spec); err == nil && !bytes.Equal(got, body) {
				return fmt.Errorf("fault-path read returned a wrong table (%d bytes)", len(got))
			}
			return nil
		},
		func(seed int64, crashed bool) error {
			got, err := readTableCache(dir, spec)
			if err != nil {
				// Corruption detected (or entry absent): safe — the
				// registry rebuilds. But a completed atomic write is a
				// durability claim (data fsynced before the rename
				// committed it), so once writeTableCache succeeded the
				// entry must survive even a later crash — this is the
				// branch a dropped fsync trips.
				if wrote {
					return fmt.Errorf("completed table-cache write unreadable (crashed=%v): %w", crashed, err)
				}
				return nil
			}
			if !bytes.Equal(got, body) {
				return fmt.Errorf("table cache served wrong bytes: %d vs %d", len(got), len(body))
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTornTableCacheCorpus is the exhaustive torn-write corpus: a real
// cached table file truncated at every 512-byte boundary (and a few
// odd offsets) must either fail the read with a corruption error or —
// only at full length — load bit-identically. A torn entry must never
// unmarshal into a wrong table.
func TestTornTableCacheCorpus(t *testing.T) {
	c, err := posit.New(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	spec := positSpec(c)
	want := buildPositTables(c)

	dir := t.TempDir()
	writeTableCache(dir, spec, want.marshalBinary())
	path := tableCachePath(dir, spec)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("cache entry was not written: %v", err)
	}
	if len(full) < 4096 {
		t.Fatalf("corpus too small to be interesting: %d bytes", len(full))
	}

	offsets := []int{0, 1, 7, len(full) - 1}
	for off := 512; off < len(full); off += 512 {
		offsets = append(offsets, off)
	}
	tornDir := t.TempDir()
	for _, off := range offsets {
		if err := os.WriteFile(tableCachePath(tornDir, spec), full[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		body, err := readTableCache(tornDir, spec)
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes was not detected", off, len(full))
		}
		if body != nil {
			t.Fatalf("truncation at %d returned data alongside error", off)
		}
		// Defense in depth: even if the checksum layer were bypassed,
		// the structural decoder must reject the torn payload rather
		// than build a wrong table.
		min := len(tableMagic) + 2 + len(spec)
		if off > min {
			if tab, err := unmarshalTables(spec, full[min:off]); err == nil {
				if !bytes.Equal(tab.marshalBinary(), want.marshalBinary()) {
					t.Fatalf("structural decoder accepted torn payload at %d as a different table", off)
				}
			}
		}
	}

	// Full length loads bit-identically.
	body, err := readTableCache(dir, spec)
	if err != nil {
		t.Fatalf("intact entry failed to read: %v", err)
	}
	got, err := unmarshalTables(spec, body)
	if err != nil {
		t.Fatalf("intact entry failed to decode: %v", err)
	}
	if !bytes.Equal(got.marshalBinary(), want.marshalBinary()) {
		t.Fatal("intact entry decoded to a different table")
	}
	if len(offsets) < 100 {
		t.Fatalf("corpus should cover >=100 truncation points, got %d", len(offsets))
	}
}

// TestChaosTableCacheErrInjected pins the error-classification contract
// the chaos suites rest on: every fault the injector produces is
// recognizable via errors.Is(err, faultfs.ErrInjected).
func TestChaosTableCacheErrInjected(t *testing.T) {
	dir := t.TempDir()
	fault := faultfs.New(faultfs.OS, faultfs.Plan{Seed: 1, Rules: []faultfs.Rule{
		{Op: faultfs.OpCreate, Mode: faultfs.ModeENOSPC, Count: 1 << 10},
	}})
	SetTableCacheFS(fault)
	defer SetTableCacheFS(nil)
	before := TableCacheWriteErrors()
	writeTableCache(dir, "spec-x", []byte("body"))
	if TableCacheWriteErrors() != before+1 {
		t.Fatalf("failed persist not counted: %d -> %d", before, TableCacheWriteErrors())
	}
	if _, err := readTableCache(dir, "spec-x"); err == nil {
		t.Fatal("nothing should have been written")
	} else if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("expected missing entry, got %v", err)
	}
}
