package arith

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"positlab/internal/faultfs"
	"positlab/internal/minifloat"
	"positlab/internal/posit"
)

// Process-wide table registry.
//
// Building a format's tables costs tens of milliseconds (the exact
// pipeline runs over all 2^16 patterns, twice for the unary tables),
// so tables are built lazily, once per process, the first time any
// caller — a solver kernel, positd's /v1/convert, the experiment
// runner — touches the format's fast path. A per-spec sync.Once gives
// singleflight semantics: concurrent first users of the same config
// block on one build instead of racing duplicates (the fact-cache
// idiom from internal/lint).
//
// Optionally the built tables persist in a content-addressed on-disk
// cache (SetTableCacheDir or POSITLAB_TABLE_CACHE): entries are keyed
// by schema version + format spec, carry a SHA-256 trailer, and are
// written atomically (temp + fsync + rename), so a corrupt or stale
// entry is silently rebuilt, never trusted.

// tableSchema versions the on-disk encoding; bumping it changes every
// cache key, so old entries are ignored rather than misread. (A var,
// not a const, so the invalidation test can simulate a bump.)
var tableSchema = "positlab-tables/v1"

const tableMagic = "PLTAB1\n"

type tableEntry struct {
	once sync.Once
	tab  *Tables
	t8   *posit.Table8
}

var tableReg = struct {
	sync.Mutex
	m   map[string]*tableEntry
	dir string
	fs  faultfs.FS
}{m: map[string]*tableEntry{}, fs: faultfs.OS}

// tableBuilds counts from-scratch builds (registry misses that the
// disk cache did not serve), for the concurrency tests and the bench
// report.
var tableBuilds atomic.Uint64

// tableCacheWriteErrs counts failed best-effort cache persists. The
// in-memory tables stay authoritative, but a sick disk should be
// visible, not silent.
var tableCacheWriteErrs atomic.Uint64

// TableCacheWriteErrors reports how many table-cache persists failed
// since process start.
func TableCacheWriteErrors() uint64 { return tableCacheWriteErrs.Load() }

// SetTableCacheFS routes the on-disk table cache through fsys (nil
// restores the real filesystem). It exists for the chaos suite and for
// positd's -fault-plan flag; production code never calls it.
func SetTableCacheFS(fsys faultfs.FS) {
	tableReg.Lock()
	tableReg.fs = faultfs.OrOS(fsys)
	tableReg.Unlock()
}

func tableFS() faultfs.FS {
	tableReg.Lock()
	defer tableReg.Unlock()
	return tableReg.fs
}

func init() {
	if dir := os.Getenv("POSITLAB_TABLE_CACHE"); dir != "" {
		// Best-effort: an unusable cache dir must not break startup —
		// the fallback is building tables in memory, so just warn.
		if err := SetTableCacheDir(dir); err != nil {
			fmt.Fprintf(os.Stderr, "arith: POSITLAB_TABLE_CACHE unusable, building tables in memory: %v\n", err)
		}
	}
}

// SetTableCacheDir enables (non-empty) or disables (empty) the on-disk
// table cache. Call it before first use of the fast formats; tables
// already resident are not re-persisted.
//
// The directory is created and probed for writability up front. On
// failure the disk cache is disabled — tables build in memory exactly
// as with no cache configured — and the error is returned so the
// caller can warn; it never needs to be fatal.
func SetTableCacheDir(dir string) error {
	var err error
	if dir != "" {
		if err = probeCacheDir(dir); err != nil {
			err = fmt.Errorf("arith: table cache: %w", err)
			dir = ""
		}
	}
	tableReg.Lock()
	tableReg.dir = dir
	tableReg.Unlock()
	return err
}

// probeCacheDir creates dir and verifies a file can actually be
// written there (MkdirAll succeeding says nothing about a read-only
// mount or a path component that is a file).
func probeCacheDir(dir string) error {
	fsys := tableFS()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	probe, err := fsys.CreateTemp(dir, ".probe-*")
	if err != nil {
		return err
	}
	name := probe.Name()
	cerr := probe.Close()
	if rerr := fsys.Remove(name); cerr == nil {
		cerr = rerr
	}
	return cerr
}

func tableEntryFor(spec string) (*tableEntry, string) {
	tableReg.Lock()
	e := tableReg.m[spec]
	if e == nil {
		e = &tableEntry{}
		tableReg.m[spec] = e
	}
	dir := tableReg.dir
	tableReg.Unlock()
	return e, dir
}

func tablesForPosit(c posit.Config) *Tables {
	e, dir := tableEntryFor(positSpec(c))
	e.once.Do(func() {
		e.tab = loadOrBuildTables(dir, positSpec(c), func() *Tables { return buildPositTables(c) })
	})
	return e.tab
}

func tablesForMini(f minifloat.Format) *Tables {
	e, dir := tableEntryFor(miniSpec(f))
	e.once.Do(func() {
		e.tab = loadOrBuildTables(dir, miniSpec(f), func() *Tables { return buildMiniTables(f) })
	})
	return e.tab
}

func table8For(c posit.Config) *posit.Table8 {
	spec := "table8_" + positSpec(c)
	e, dir := tableEntryFor(spec)
	e.once.Do(func() {
		if dir != "" {
			if body, err := readTableCache(dir, spec); err == nil {
				if t, err := posit.UnmarshalTable8(c, body); err == nil {
					e.t8 = t
					return
				}
			}
		}
		tableBuilds.Add(1)
		t, err := posit.NewTable8(c)
		if err != nil {
			// Unreachable: newTable8Format gates on c.N() == 8, the only
			// condition NewTable8 rejects.
			panic(err) //lint:allow panics invariant check: table8For is only reachable for 8-bit configs
		}
		e.t8 = t
		if dir != "" {
			writeTableCache(dir, spec, t.MarshalBinary())
		}
	})
	return e.t8
}

func loadOrBuildTables(dir, spec string, build func() *Tables) *Tables {
	if dir != "" {
		if body, err := readTableCache(dir, spec); err == nil {
			if t, err := unmarshalTables(spec, body); err == nil {
				return t
			}
		}
	}
	tableBuilds.Add(1)
	t := build()
	if dir != "" {
		writeTableCache(dir, spec, t.marshalBinary())
	}
	return t
}

// --- on-disk cache ---

func tableCachePath(dir, spec string) string {
	h := sha256.Sum256([]byte(tableSchema + "\x00" + spec))
	return filepath.Join(dir, hex.EncodeToString(h[:])[:24]+".tab")
}

func readTableCache(dir, spec string) ([]byte, error) {
	data, err := tableFS().ReadFile(tableCachePath(dir, spec))
	if err != nil {
		return nil, err
	}
	min := len(tableMagic) + 2 + sha256.Size
	if len(data) < min {
		return nil, errors.New("arith: table cache entry truncated")
	}
	payload, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	want := sha256.Sum256(payload)
	if !bytes.Equal(sum, want[:]) {
		return nil, errors.New("arith: table cache entry corrupt")
	}
	if string(payload[:len(tableMagic)]) != tableMagic {
		return nil, errors.New("arith: table cache entry has wrong magic")
	}
	rest := payload[len(tableMagic):]
	slen := int(binary.LittleEndian.Uint16(rest))
	rest = rest[2:]
	if len(rest) < slen || string(rest[:slen]) != spec {
		return nil, errors.New("arith: table cache entry is for a different spec")
	}
	return rest[slen:], nil
}

// writeTableCache persists a built table best-effort: a failed write
// leaves the in-memory tables authoritative and the next process
// rebuilds — but the failure is counted, not silent. Within that, the
// write itself is atomic and durable (temp file, fsync before rename
// via faultfs.WriteFileAtomic) so readers never observe a torn entry.
func writeTableCache(dir, spec string, body []byte) {
	payload := make([]byte, 0, len(tableMagic)+2+len(spec)+len(body)+sha256.Size)
	payload = append(payload, tableMagic...)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(spec)))
	payload = append(payload, spec...)
	payload = append(payload, body...)
	sum := sha256.Sum256(payload)
	payload = append(payload, sum[:]...)

	if err := faultfs.WriteFileAtomic(tableFS(), tableCachePath(dir, spec), payload); err != nil {
		tableCacheWriteErrs.Add(1)
	}
}

// --- Tables (de)serialization ---

func appendU64s(buf []byte, v []uint64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
	for _, x := range v {
		buf = binary.LittleEndian.AppendUint64(buf, x)
	}
	return buf
}

func appendU16s(buf []byte, v []uint16) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
	for _, x := range v {
		buf = binary.LittleEndian.AppendUint16(buf, x)
	}
	return buf
}

func (t *Tables) marshalBinary() []byte {
	buf := make([]byte, 0, t.MemBytes()+64)
	buf = append(buf, byte(t.width))
	if t.ieee {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, t.maxPat)
	buf = binary.LittleEndian.AppendUint16(buf, t.patMask)
	buf = binary.LittleEndian.AppendUint16(buf, t.signPat)
	buf = binary.LittleEndian.AppendUint16(buf, t.nanPat)
	buf = binary.LittleEndian.AppendUint16(buf, t.infPat)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(t.minScale)))
	buf = binary.LittleEndian.AppendUint64(buf, t.maxFinBits)
	dec := make([]uint64, len(t.decode))
	for i, v := range t.decode {
		dec[i] = math.Float64bits(v)
	}
	buf = appendU64s(buf, dec)
	buf = appendU64s(buf, t.cut)
	buf = appendU16s(buf, t.sqrt)
	buf = appendU16s(buf, t.recip)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.fb)))
	for _, b := range t.fb {
		buf = append(buf, byte(b))
	}
	buf = appendU16s(buf, t.patBase)
	return buf
}

type tableReader struct {
	data []byte
	err  error
}

func (r *tableReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.data) < n {
		r.err = errors.New("arith: table cache body truncated")
		return nil
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}

// The fixed-width readers tolerate a failed take (nil slice): the
// error is already latched in r.err, and the decoder must keep
// returning zeros instead of panicking on torn input — the corpus
// test feeds it raw truncations directly.
func (r *tableReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *tableReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *tableReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// maxTableLen bounds every decoded slice length: the widest format is
// 16 bits, so no table exceeds 2^16+2 entries.
const maxTableLen = 1<<16 + 2

func (r *tableReader) length() int {
	n := int(r.u32())
	if n > maxTableLen {
		r.err = errors.New("arith: table cache length out of range")
		return 0
	}
	return n
}

func (r *tableReader) u64s() []uint64 {
	n := r.length()
	v := make([]uint64, n)
	for i := range v {
		v[i] = r.u64()
	}
	return v
}

func (r *tableReader) u16s() []uint16 {
	n := r.length()
	v := make([]uint16, n)
	for i := range v {
		v[i] = r.u16()
	}
	return v
}

func unmarshalTables(spec string, body []byte) (*Tables, error) {
	r := &tableReader{data: body}
	t := &Tables{spec: spec}
	hdr := r.take(2)
	if r.err != nil {
		return nil, r.err
	}
	t.width = int(hdr[0])
	t.ieee = hdr[1] == 1
	t.maxPat = r.u32()
	t.patMask = r.u16()
	t.signPat = r.u16()
	t.nanPat = r.u16()
	t.infPat = r.u16()
	t.minScale = int(int64(r.u64()))
	t.maxFinBits = r.u64()
	dec := r.u64s()
	t.cut = r.u64s()
	t.sqrt = r.u16s()
	t.recip = r.u16s()
	nfb := r.length()
	fbRaw := r.take(nfb)
	t.patBase = r.u16s()
	if r.err != nil {
		return nil, r.err
	}
	if len(r.data) != 0 {
		return nil, errors.New("arith: table cache body has trailing bytes")
	}
	if t.width < 2 || t.width > 16 || len(dec) != 1<<uint(t.width) ||
		len(t.cut) != int(t.maxPat)+2 || len(t.sqrt) != len(dec) ||
		len(t.recip) != len(dec) || len(t.patBase) != nfb {
		return nil, errors.New("arith: table cache body inconsistent")
	}
	t.decode = make([]float64, len(dec))
	for i, b := range dec {
		t.decode[i] = math.Float64frombits(b)
	}
	t.fb = make([]int8, nfb)
	for i, b := range fbRaw {
		t.fb[i] = int8(b)
	}
	if t.minScale+1023 < 0 || t.minScale+nfb+1023 > 2048 {
		return nil, errors.New("arith: table cache scale range out of bounds")
	}
	t.finalize()
	return t, nil
}
