package arith

import (
	"math"
	"sync"

	"positlab/internal/posit"
)

// table8Format is the fully tabulated 8-bit posit implementation:
// every scalar operation is a single indexed load from posit.Table8
// (add/sub/mul/div over all 2^16 operand pairs, sqrt over all 2^8
// patterns). Unlike the value-domain fast formats its Num *is* the
// posit pattern — with a complete ALU table there is nothing to gain
// from the float64 value embedding, and pattern-domain kernels skip
// the decode/encode entirely. The 260 KiB table builds lazily behind
// the process-wide registry on first arithmetic use.
type table8Format struct {
	c  posit.Config
	lt *lazyTable8
}

type lazyTable8 struct {
	once sync.Once
	c    posit.Config
	tab  *posit.Table8
}

func (l *lazyTable8) get() *posit.Table8 {
	l.once.Do(func() { l.tab = table8For(l.c) })
	return l.tab
}

func newTable8Format(c posit.Config) Format {
	return table8Format{c: c, lt: &lazyTable8{c: c}}
}

func (f table8Format) Name() string { return f.c.String() }

// Conversions run through the integer pipeline — they sit off the
// kernel hot paths, and FromFloat64 must round arbitrary float64
// inputs, not just table-indexable patterns.
func (f table8Format) FromFloat64(x float64) Num { return Num(f.c.FromFloat64(x)) }
func (f table8Format) ToFloat64(a Num) float64   { return f.c.ToFloat64(posit.Bits(a)) }

func (f table8Format) Add(a, b Num) Num {
	return Num(f.lt.get().Add(posit.Bits(a), posit.Bits(b)))
}
func (f table8Format) Sub(a, b Num) Num {
	return Num(f.lt.get().Sub(posit.Bits(a), posit.Bits(b)))
}
func (f table8Format) Mul(a, b Num) Num {
	return Num(f.lt.get().Mul(posit.Bits(a), posit.Bits(b)))
}
func (f table8Format) Div(a, b Num) Num {
	return Num(f.lt.get().Div(posit.Bits(a), posit.Bits(b)))
}
func (f table8Format) Sqrt(a Num) Num { return Num(f.lt.get().Sqrt(posit.Bits(a))) }
func (f table8Format) MulAdd(a, b, c Num) Num {
	t := f.lt.get()
	return Num(t.Add(t.Mul(posit.Bits(a), posit.Bits(b)), posit.Bits(c)))
}
func (f table8Format) Neg(a Num) Num     { return Num(f.c.Neg(posit.Bits(a))) }
func (f table8Format) Zero() Num         { return Num(f.c.Zero()) }
func (f table8Format) One() Num          { return Num(f.c.One()) }
func (f table8Format) IsZero(a Num) bool { return f.c.IsZero(posit.Bits(a)) }
func (f table8Format) Bad(a Num) bool    { return f.c.IsNaR(posit.Bits(a)) }
func (f table8Format) Less(a, b Num) bool {
	pa, pb := posit.Bits(a), posit.Bits(b)
	if f.c.IsNaR(pa) || f.c.IsNaR(pb) {
		return false
	}
	return f.c.Less(pa, pb)
}
func (f table8Format) Eps() float64 {
	return math.Ldexp(1, -(f.c.FracBitsAtScale(0) + 1))
}
func (f table8Format) MaxValue() float64 { return f.c.ToFloat64(f.c.MaxPos()) }

// Config exposes the posit configuration (see PositConfig).
func (f table8Format) Config() posit.Config { return f.c }

// Kernels: the defining scalar-op sequences with the table hoisted out
// of the loop — every element is two indexed loads, no dispatch, no
// rounding logic at all.

func (f table8Format) DotKernel(x, y []Num) Num {
	t := f.lt.get()
	var s posit.Bits
	for i := range x {
		s = t.Add(s, t.Mul(posit.Bits(x[i]), posit.Bits(y[i])))
	}
	return Num(s)
}

func (f table8Format) AxpyKernel(alpha Num, x, y []Num) {
	t := f.lt.get()
	a := posit.Bits(alpha)
	for i := range x {
		y[i] = Num(t.Add(posit.Bits(y[i]), t.Mul(a, posit.Bits(x[i]))))
	}
}

func (f table8Format) ScaleKernel(alpha Num, x []Num) {
	t := f.lt.get()
	a := posit.Bits(alpha)
	for i := range x {
		x[i] = Num(t.Mul(a, posit.Bits(x[i])))
	}
}

func (f table8Format) MulAddKernel(alpha Num, x, y, dst []Num) {
	t := f.lt.get()
	a := posit.Bits(alpha)
	for i := range x {
		dst[i] = Num(t.Add(t.Mul(a, posit.Bits(x[i])), posit.Bits(y[i])))
	}
}

func (f table8Format) MatVecKernel(rowPtr, col []int, val []Num, x, y []Num) {
	t := f.lt.get()
	for i := 0; i+1 < len(rowPtr); i++ {
		var s posit.Bits
		for idx := rowPtr[i]; idx < rowPtr[i+1]; idx++ {
			s = t.Add(s, t.Mul(posit.Bits(val[idx]), posit.Bits(x[col[idx]])))
		}
		y[i] = Num(s)
	}
}

func (f table8Format) TrailingUpdateKernel(nalpha Num, x, w []Num) {
	t := f.lt.get()
	a := posit.Bits(nalpha)
	for i := range x {
		w[i] = Num(t.Add(t.Mul(a, posit.Bits(x[i])), posit.Bits(w[i])))
	}
}

func (f table8Format) DivKernel(alpha Num, x []Num) {
	t := f.lt.get()
	a := posit.Bits(alpha)
	for i := range x {
		x[i] = Num(t.Div(posit.Bits(x[i]), a))
	}
}
