package arith

import (
	"positlab/internal/minifloat"
	"positlab/internal/posit"
)

// Test hooks into the table registry. They exist so the differential
// and cache tests can exercise unexported machinery (schema bumps,
// build counting, registry-bypassing loads) without widening the
// public API.

// TableBuildCount reports the number of from-scratch table builds this
// process has performed (disk-cache hits do not count).
func TableBuildCount() uint64 { return tableBuilds.Load() }

// SetTableSchemaForTest swaps the on-disk schema tag, simulating a
// format-evolution bump; the returned func restores the real one.
func SetTableSchemaForTest(s string) (restore func()) {
	old := tableSchema
	tableSchema = s
	return func() { tableSchema = old }
}

// TableCachePathForTest exposes the content-addressed cache location.
func TableCachePathForTest(dir, spec string) string { return tableCachePath(dir, spec) }

// PositTableSpec exposes the registry key of a posit config.
func PositTableSpec(c posit.Config) string { return positSpec(c) }

// LoadOrBuildPositTablesForTest bypasses the in-process registry so
// cache tests can repeat loads within one process.
func LoadOrBuildPositTablesForTest(dir string, c posit.Config) *Tables {
	return loadOrBuildTables(dir, positSpec(c), func() *Tables { return buildPositTables(c) })
}

// BuildMiniTablesForTest runs a from-scratch minifloat table build
// (the table-build benchmark times it).
func BuildMiniTablesForTest(f minifloat.Format) *Tables { return buildMiniTables(f) }

// MarshalTablesForTest exposes the cache encoding of t.
func MarshalTablesForTest(t *Tables) []byte { return t.marshalBinary() }

// CutsForTest exposes the rounding-boundary table: cut[p] is the
// magnitude where patterns p-1 and p meet.
func CutsForTest(t *Tables) []uint64 { return t.cut }
