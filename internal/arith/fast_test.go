package arith_test

import (
	"math"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/minifloat"
	"positlab/internal/posit"
)

// pairs of (fast, slow) implementations that must agree bit-for-bit in
// results (as float64 values — the Num encodings differ by design).
var implPairs = []struct {
	name       string
	fast, slow arith.Format
}{
	{"posit16e1", arith.FastPosit(posit.Posit16e1), arith.Posit(posit.Posit16e1)},
	{"posit16e2", arith.FastPosit(posit.Posit16e2), arith.Posit(posit.Posit16e2)},
	{"posit32e2", arith.FastPosit(posit.Posit32e2), arith.Posit(posit.Posit32e2)},
	{"posit32e3", arith.FastPosit(posit.Posit32e3), arith.Posit(posit.Posit32e3)},
	{"posit8e0", arith.FastPosit(posit.Posit8e0), arith.Posit(posit.Posit8e0)},
	{"float16", arith.FastMini(minifloat.Float16, "Float16"), arith.Mini(minifloat.Float16, "Float16")},
	{"bfloat16", arith.FastMini(minifloat.BFloat16, "BFloat16"), arith.Mini(minifloat.BFloat16, "BFloat16")},
}

// sameValue compares results across implementations: NaN matches NaN,
// zeros match by value (posit sign-of-zero is normalized to +0 in both;
// IEEE keeps signs, compared by bits).
func sameValue(a, b float64, ieee bool) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if ieee {
		return math.Float64bits(a) == math.Float64bits(b)
	}
	return a == b
}

// interestingValues yields a boundary-heavy operand set for a format
// plus a deterministic pseudo-random spread.
func interestingValues(f arith.Format, extra int) []float64 {
	vals := []float64{
		0, 1, -1, 2, 0.5, 3, 1.0 / 3.0, -7,
		f.MaxValue(), -f.MaxValue(), f.MaxValue() / 2,
		1e-5, 1e5, math.Pi, -math.E,
	}
	// Near-one neighborhood where ties concentrate.
	for i := -4; i <= 4; i++ {
		vals = append(vals, 1+float64(i)*f.Eps())
	}
	// Powers of two across the dynamic range.
	for s := -130; s <= 130; s += 7 {
		vals = append(vals, math.Ldexp(1, s))
	}
	x := uint64(0xDEADBEEFCAFE1234)
	for i := 0; i < extra; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		// Map to a wide log-uniform value.
		e := int(x%240) - 120
		m := 1 + float64(x>>40)/float64(1<<24)
		v := math.Ldexp(m, e)
		if x&(1<<20) != 0 {
			v = -v
		}
		vals = append(vals, v)
	}
	// Round everything through the format so operands are format values.
	out := make([]float64, 0, len(vals))
	for _, v := range vals {
		out = append(out, f.ToFloat64(f.FromFloat64(v)))
	}
	return out
}

func TestFastMatchesSlowBinaryOps(t *testing.T) {
	extra := 120
	if testing.Short() {
		extra = 30
	}
	for _, pair := range implPairs {
		_, isPosit := arith.PositConfig(pair.fast)
		vals := interestingValues(pair.slow, extra)
		for _, x := range vals {
			for _, y := range vals {
				fa := pair.fast.ToFloat64(pair.fast.Add(pair.fast.FromFloat64(x), pair.fast.FromFloat64(y)))
				sa := pair.slow.ToFloat64(pair.slow.Add(pair.slow.FromFloat64(x), pair.slow.FromFloat64(y)))
				if !sameValue(fa, sa, !isPosit) {
					t.Fatalf("%s: Add(%g,%g) fast=%g slow=%g", pair.name, x, y, fa, sa)
				}
				fm := pair.fast.ToFloat64(pair.fast.Mul(pair.fast.FromFloat64(x), pair.fast.FromFloat64(y)))
				sm := pair.slow.ToFloat64(pair.slow.Mul(pair.slow.FromFloat64(x), pair.slow.FromFloat64(y)))
				if !sameValue(fm, sm, !isPosit) {
					t.Fatalf("%s: Mul(%g,%g) fast=%g slow=%g", pair.name, x, y, fm, sm)
				}
				fd := pair.fast.ToFloat64(pair.fast.Div(pair.fast.FromFloat64(x), pair.fast.FromFloat64(y)))
				sd := pair.slow.ToFloat64(pair.slow.Div(pair.slow.FromFloat64(x), pair.slow.FromFloat64(y)))
				if !sameValue(fd, sd, !isPosit) {
					t.Fatalf("%s: Div(%g,%g) fast=%g slow=%g", pair.name, x, y, fd, sd)
				}
				fs := pair.fast.ToFloat64(pair.fast.Sub(pair.fast.FromFloat64(x), pair.fast.FromFloat64(y)))
				ss := pair.slow.ToFloat64(pair.slow.Sub(pair.slow.FromFloat64(x), pair.slow.FromFloat64(y)))
				if !sameValue(fs, ss, !isPosit) {
					t.Fatalf("%s: Sub(%g,%g) fast=%g slow=%g", pair.name, x, y, fs, ss)
				}
			}
		}
	}
}

func TestFastMatchesSlowUnary(t *testing.T) {
	for _, pair := range implPairs {
		_, isPosit := arith.PositConfig(pair.fast)
		for _, x := range interestingValues(pair.slow, 400) {
			fq := pair.fast.ToFloat64(pair.fast.Sqrt(pair.fast.FromFloat64(x)))
			sq := pair.slow.ToFloat64(pair.slow.Sqrt(pair.slow.FromFloat64(x)))
			if !sameValue(fq, sq, !isPosit) {
				t.Fatalf("%s: Sqrt(%g) fast=%g slow=%g", pair.name, x, fq, sq)
			}
			fn := pair.fast.ToFloat64(pair.fast.Neg(pair.fast.FromFloat64(x)))
			sn := pair.slow.ToFloat64(pair.slow.Neg(pair.slow.FromFloat64(x)))
			if !sameValue(fn, sn, !isPosit) {
				t.Fatalf("%s: Neg(%g) fast=%g slow=%g", pair.name, x, fn, sn)
			}
		}
	}
}

// Exhaustive conversion agreement for the 16-bit formats: every posit16
// pattern decodes and re-encodes identically through both paths, and a
// dense sweep of float64s rounds identically.
func TestFastConversionExhaustive16(t *testing.T) {
	for _, cfg := range []posit.Config{posit.Posit16e1, posit.Posit16e2} {
		fast := arith.FastPosit(cfg)
		for pat := uint64(0); pat < 1<<16; pat++ {
			p := posit.Bits(pat)
			if cfg.IsNaR(p) {
				continue
			}
			v := cfg.ToFloat64(p)
			// The fast format must treat every exact posit value as a
			// fixed point of rounding.
			got := fast.ToFloat64(fast.FromFloat64(v))
			if got != v {
				t.Fatalf("%v: value %g not a fixed point (got %g)", cfg, v, got)
			}
		}
	}
	// Dense log sweep compared against the slow rounder.
	for _, pair := range implPairs {
		_, isPosit := arith.PositConfig(pair.fast)
		for e := -140; e <= 140; e++ {
			for m := 0; m < 8; m++ {
				v := math.Ldexp(1+float64(m)/7.9, e)
				fg := pair.fast.ToFloat64(pair.fast.FromFloat64(v))
				sg := pair.slow.ToFloat64(pair.slow.FromFloat64(v))
				if !sameValue(fg, sg, !isPosit) {
					t.Fatalf("%s: FromFloat64(%g) fast=%g slow=%g", pair.name, v, fg, sg)
				}
			}
		}
	}
}

// Midpoint inputs are the adversarial case for the fast rounder: they
// sit exactly on rounding boundaries.
func TestFastConversionMidpoints(t *testing.T) {
	for _, cfg := range []posit.Config{posit.Posit16e2, posit.Posit32e2} {
		fast := arith.FastPosit(cfg)
		slow := arith.Posit(cfg)
		// Walk patterns near regime transitions and sample midpoints.
		for _, base := range []posit.Bits{
			cfg.One(), cfg.FromFloat64(2), cfg.FromFloat64(1024),
			cfg.FromFloat64(math.Ldexp(1, 24)), cfg.FromFloat64(math.Ldexp(1, -24)),
			cfg.MinPos(), cfg.Prev(cfg.MaxPos()),
		} {
			for off := -3; off <= 3; off++ {
				p := posit.Bits((uint64(base) + uint64(off)) & (1<<uint(cfg.N()) - 1))
				if cfg.IsNaR(p) || cfg.IsZero(p) || p == cfg.MaxPos() {
					continue
				}
				lo, hi := cfg.ToFloat64(p), cfg.ToFloat64(cfg.Next(p))
				mid := (lo + hi) / 2 // arithmetic mean, often near the pattern midpoint
				for _, v := range []float64{mid, math.Nextafter(mid, lo), math.Nextafter(mid, hi)} {
					fg := fast.ToFloat64(fast.FromFloat64(v))
					sg := slow.ToFloat64(slow.FromFloat64(v))
					if fg != sg {
						t.Fatalf("%v: FromFloat64(%.17g) fast=%g slow=%g", cfg, v, fg, sg)
					}
				}
			}
		}
	}
}
