package arith_test

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/minifloat"
	"positlab/internal/posit"
)

// tabbedFormat pairs a table-backed fast format with its slow
// integer-pipeline reference — the ground truth every table entry and
// every rounded value-domain result is checked against.
type tabbedFormat struct {
	name string
	fast arith.Format // table-accelerated value-domain implementation
	slow arith.Format // integer pipeline reference
}

func tabbedFormats(t *testing.T) []tabbedFormat {
	t.Helper()
	var fs []tabbedFormat
	for es := 0; es <= 4; es++ {
		fs = append(fs, tabbedFormat{
			name: fmt.Sprintf("posit16es%d", es),
			fast: arith.MustByName(fmt.Sprintf("posit16es%d", es)),
			slow: arith.Posit(posit.MustNew(16, es)),
		})
	}
	fs = append(fs,
		tabbedFormat{"float16", arith.MustByName("float16"), arith.Mini(minifloat.Float16, "Float16")},
		tabbedFormat{"bfloat16", arith.MustByName("bfloat16"), arith.Mini(minifloat.BFloat16, "BFloat16")},
		tabbedFormat{"fp8e5m2", arith.MustByName("fp8e5m2"), arith.Mini(minifloat.MustNew(5, 2), "FP8-E5M2")},
		tabbedFormat{"fp8e4m3", arith.MustByName("fp8e4m3"), arith.Mini(minifloat.MustNew(4, 3), "FP8-E4M3")},
	)
	for _, f := range fs {
		if _, ok := arith.TablesOf(f.fast); !ok {
			t.Fatalf("%s: expected a table-backed fast format", f.name)
		}
	}
	return fs
}

// TestTablesDecodeExhaustive checks, for every pattern of every
// table-backed format, that the decode table equals the pipeline's
// ToFloat64 and that Encode maps each decoded value to the same
// canonical pattern FromFloat64 produces. This is the tentpole's
// bit-identity claim at its root: 2^width exact decodes, 2^width exact
// re-encodes, zero tolerance.
func TestTablesDecodeExhaustive(t *testing.T) {
	for _, tf := range tabbedFormats(t) {
		t.Run(tf.name, func(t *testing.T) {
			tab, _ := arith.TablesOf(tf.fast)
			n := 1 << tab.Width()
			for p := 0; p < n; p++ {
				got := tab.Decode(uint16(p))
				want := tf.slow.ToFloat64(arith.Num(p))
				if math.Float64bits(got) != math.Float64bits(want) &&
					!(math.IsNaN(got) && math.IsNaN(want)) {
					t.Fatalf("Decode(%#x) = %g (bits %x), pipeline = %g (bits %x)",
						p, got, math.Float64bits(got), want, math.Float64bits(want))
				}
				ep := tab.Encode(want)
				wp := uint16(tf.slow.FromFloat64(want))
				if ep != wp {
					t.Fatalf("Encode(Decode(%#x)) = %#x, pipeline FromFloat64 = %#x", p, ep, wp)
				}
			}
		})
	}
}

// TestTablesEncodeBoundariesExhaustive probes Encode exactly at every
// rounding boundary the tables store, one float64 ulp below, and one
// above — positive and negated — against the pipeline's FromFloat64.
// Ties (the boundary itself) exercise the even-pattern rule; the ±1-ulp
// neighbors pin the boundary placement to the exact cut.
func TestTablesEncodeBoundariesExhaustive(t *testing.T) {
	for _, tf := range tabbedFormats(t) {
		t.Run(tf.name, func(t *testing.T) {
			tab, _ := arith.TablesOf(tf.fast)
			for _, cb := range arith.CutsForTest(tab) {
				b := math.Float64frombits(cb)
				for _, v := range []float64{
					b, math.Nextafter(b, 0), math.Nextafter(b, math.Inf(1)),
				} {
					for _, x := range []float64{v, -v} {
						got := tab.Encode(x)
						want := uint16(tf.slow.FromFloat64(x))
						if got != want {
							t.Fatalf("Encode(%g / bits %x) = %#x, pipeline = %#x",
								x, math.Float64bits(x), got, want)
						}
					}
				}
			}
		})
	}
}

// TestTablesUnaryExhaustive runs the value-domain Sqrt and the
// reciprocal (Div by x with unit numerator, the tabulated recip path)
// through the fast format for all 2^width patterns and compares with
// the pipeline — covering the exact-value re-encode (valuePat) that
// feeds every unary table lookup.
func TestTablesUnaryExhaustive(t *testing.T) {
	for _, tf := range tabbedFormats(t) {
		t.Run(tf.name, func(t *testing.T) {
			tab, _ := arith.TablesOf(tf.fast)
			one := tf.fast.One()
			n := 1 << tab.Width()
			for p := 0; p < n; p++ {
				v := tf.slow.ToFloat64(arith.Num(p))
				x := tf.fast.FromFloat64(v)

				gs := tf.fast.ToFloat64(tf.fast.Sqrt(x))
				ws := tf.slow.ToFloat64(tf.slow.Sqrt(arith.Num(p)))
				if math.Float64bits(gs) != math.Float64bits(ws) &&
					!(math.IsNaN(gs) && math.IsNaN(ws)) {
					t.Fatalf("Sqrt(%#x): fast %g, pipeline %g", p, gs, ws)
				}

				gr := tf.fast.ToFloat64(tf.fast.Div(one, x))
				wr := tf.slow.ToFloat64(tf.slow.Div(tf.slow.One(), arith.Num(p)))
				if math.Float64bits(gr) != math.Float64bits(wr) &&
					!(math.IsNaN(gr) && math.IsNaN(wr)) {
					t.Fatalf("Recip(%#x): fast %g, pipeline %g", p, gr, wr)
				}
			}
		})
	}
}

// TestTablesBinaryOpsRandom sweeps randomized pattern pairs — the full
// pattern space, so NaR/NaN/Inf/zero/max operands appear at their
// natural density — through Add/Sub/Mul/Div/MulAdd on the fast path
// and the pipeline.
func TestTablesBinaryOpsRandom(t *testing.T) {
	pairs := 60000
	if testing.Short() {
		pairs = 4000
	}
	for _, tf := range tabbedFormats(t) {
		t.Run(tf.name, func(t *testing.T) {
			tab, _ := arith.TablesOf(tf.fast)
			mask := uint64(1)<<tab.Width() - 1
			rng := uint64(0x1F3A5C7E9B2D4F68)
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			for i := 0; i < pairs; i++ {
				pa, pb := next()&mask, next()&mask
				va, vb := tf.slow.ToFloat64(arith.Num(pa)), tf.slow.ToFloat64(arith.Num(pb))
				fa, fb := tf.fast.FromFloat64(va), tf.fast.FromFloat64(vb)
				sa, sb := arith.Num(pa), arith.Num(pb)
				check := func(op string, g, w arith.Num) {
					gv, wv := tf.fast.ToFloat64(g), tf.slow.ToFloat64(w)
					if math.Float64bits(gv) != math.Float64bits(wv) &&
						!(math.IsNaN(gv) && math.IsNaN(wv)) {
						t.Fatalf("%s(%#x,%#x) = fast %g (bits %x), pipeline %g (bits %x)",
							op, pa, pb, gv, math.Float64bits(gv), wv, math.Float64bits(wv))
					}
				}
				check("Add", tf.fast.Add(fa, fb), tf.slow.Add(sa, sb))
				check("Sub", tf.fast.Sub(fa, fb), tf.slow.Sub(sa, sb))
				check("Mul", tf.fast.Mul(fa, fb), tf.slow.Mul(sa, sb))
				check("Div", tf.fast.Div(fa, fb), tf.slow.Div(sa, sb))
				check("MulAdd", tf.fast.MulAdd(fa, fb, tf.fast.One()),
					tf.slow.MulAdd(sa, sb, tf.slow.One()))
			}
		})
	}
}

// TestTable8Exhaustive compares the tabulated 8-bit posit formats
// against the integer pipeline over every operand pair — all 2^16
// combinations per es, every binary op, plus the unary tables. This is
// the wiring test for posit.Table8 behind the kernel fast path.
func TestTable8Exhaustive(t *testing.T) {
	for es := 0; es <= 4; es++ {
		t.Run(fmt.Sprintf("posit8es%d", es), func(t *testing.T) {
			fast := arith.MustByName(fmt.Sprintf("posit8es%d", es))
			c := posit.MustNew(8, es)
			slow := arith.Posit(c)
			// The fast 8-bit Num is the posit pattern itself; feed both
			// implementations from the same pattern pair.
			for a := 0; a < 256; a++ {
				va := slow.ToFloat64(arith.Num(a))
				fa := fast.FromFloat64(va)
				gs := fast.ToFloat64(fast.Sqrt(fa))
				ws := slow.ToFloat64(slow.Sqrt(arith.Num(a)))
				if math.Float64bits(gs) != math.Float64bits(ws) && !(math.IsNaN(gs) && math.IsNaN(ws)) {
					t.Fatalf("Sqrt(%#x): table %g, pipeline %g", a, gs, ws)
				}
				for b := 0; b < 256; b++ {
					vb := slow.ToFloat64(arith.Num(b))
					fb := fast.FromFloat64(vb)
					check := func(op string, g, w arith.Num) {
						gv, wv := fast.ToFloat64(g), slow.ToFloat64(w)
						if math.Float64bits(gv) != math.Float64bits(wv) &&
							!(math.IsNaN(gv) && math.IsNaN(wv)) {
							t.Fatalf("%s(%#x,%#x): table %g, pipeline %g", op, a, b, gv, wv)
						}
					}
					check("Add", fast.Add(fa, fb), slow.Add(arith.Num(a), arith.Num(b)))
					check("Sub", fast.Sub(fa, fb), slow.Sub(arith.Num(a), arith.Num(b)))
					check("Mul", fast.Mul(fa, fb), slow.Mul(arith.Num(a), arith.Num(b)))
					check("Div", fast.Div(fa, fb), slow.Div(arith.Num(a), arith.Num(b)))
				}
			}
		})
	}
}

// TestDivKernelMatchesScalar asserts DivKernel is bit-identical to the
// scalar x[i] = Div(x[i], alpha) loop for every registered format,
// including exceptional divisors (zero, NaR/NaN, huge, tiny).
func TestDivKernelMatchesScalar(t *testing.T) {
	n := 257
	if testing.Short() {
		n = 65
	}
	for name, f := range kernelFormats(t) {
		t.Run(name, func(t *testing.T) {
			bk := arith.BulkOf(f)
			x := kernelOperands(f, n, 0xC0FFEE12345678)
			alphas := []arith.Num{
				f.FromFloat64(1.0 / 3.0),
				f.FromFloat64(3),
				f.One(),
				f.Zero(),
				f.FromFloat64(math.NaN()),
				f.FromFloat64(f.MaxValue()),
				f.FromFloat64(-1e-3),
			}
			for _, alpha := range alphas {
				want := cloneNums(x)
				for i := range want {
					want[i] = f.Div(want[i], alpha)
				}
				got := cloneNums(x)
				bk.DivKernel(alpha, got)
				for i := range want {
					if !eqNum(f, got[i], want[i]) {
						t.Fatalf("alpha=%g: DivKernel[%d] = %g, scalar Div = %g",
							f.ToFloat64(alpha), i, f.ToFloat64(got[i]), f.ToFloat64(want[i]))
					}
				}
			}
		})
	}
}

// TestDivKernelInstrumented checks the batched Div counter of both
// instrumentation wrappers.
func TestDivKernelInstrumented(t *testing.T) {
	n := 64
	base := arith.Posit16e2
	x := kernelOperands(base, n, 7)

	f, c := arith.Instrument(base)
	arith.BulkOf(f).DivKernel(f.FromFloat64(2), cloneNums(x))
	if c.Div != uint64(n) {
		t.Errorf("instrumented DivKernel count = %d, want %d", c.Div, n)
	}

	var ac arith.AtomicOpCounts
	fa := arith.InstrumentAtomic(base, &ac)
	arith.BulkOf(fa).DivKernel(fa.FromFloat64(2), cloneNums(x))
	if got := ac.Snapshot().Div; got != uint64(n) {
		t.Errorf("atomic DivKernel count = %d, want %d", got, n)
	}
}

// TestTableRegistrySingleflight hammers the first use of a
// fresh-to-this-process format from many goroutines: exactly one build
// must happen, every caller must see the same tables, and the run must
// be race-clean (asserted under -race in make verify).
func TestTableRegistrySingleflight(t *testing.T) {
	f := arith.FastPosit(posit.MustNew(12, 1)) // no other test uses posit(12,1)
	before := arith.TableBuildCount()
	const workers = 24
	results := make([]arith.Num, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			x := f.FromFloat64(1.5)
			results[w] = f.Add(x, f.Mul(x, x)) // first op forces the lazy build
			done <- w
		}(w)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	if d := arith.TableBuildCount() - before; d != 1 {
		t.Errorf("parallel first use built %d times, want exactly 1", d)
	}
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Errorf("worker %d saw %v, worker 0 saw %v", w, results[w], results[0])
		}
	}
	tab, ok := arith.TablesOf(f)
	if !ok || tab.Spec() != arith.PositTableSpec(posit.MustNew(12, 1)) {
		t.Errorf("TablesOf after build: ok=%v spec=%q", ok, tab.Spec())
	}
}

// TestTableDiskCache covers the on-disk cache lifecycle: a first load
// builds and persists, a second load is served from disk bit-for-bit,
// corruption forces a silent rebuild, and a schema bump changes the
// cache key so stale entries are ignored rather than misread.
func TestTableDiskCache(t *testing.T) {
	dir := t.TempDir()
	c := posit.MustNew(10, 1) // unique to this test: every load is observable
	spec := arith.PositTableSpec(c)
	path := arith.TableCachePathForTest(dir, spec)

	b0 := arith.TableBuildCount()
	t1 := arith.LoadOrBuildPositTablesForTest(dir, c)
	if d := arith.TableBuildCount() - b0; d != 1 {
		t.Fatalf("first load: %d builds, want 1", d)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("first load did not persist the tables: %v", err)
	}

	t2 := arith.LoadOrBuildPositTablesForTest(dir, c)
	if d := arith.TableBuildCount() - b0; d != 1 {
		t.Fatalf("second load rebuilt (%d builds total), want disk hit", d)
	}
	m1, m2 := arith.MarshalTablesForTest(t1), arith.MarshalTablesForTest(t2)
	if string(m1) != string(m2) {
		t.Fatal("tables loaded from disk differ from the built tables")
	}
	for p := 0; p < 1<<t1.Width(); p++ {
		a, b := t1.Decode(uint16(p)), t2.Decode(uint16(p))
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("decode[%#x] differs after disk round-trip: %g vs %g", p, a, b)
		}
	}

	// Corrupt one payload byte: the SHA-256 trailer must reject the
	// entry and the loader must rebuild (and rewrite) silently.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_ = arith.LoadOrBuildPositTablesForTest(dir, c)
	if d := arith.TableBuildCount() - b0; d != 2 {
		t.Fatalf("corrupt entry: %d builds total, want rebuild (2)", d)
	}
	if fresh, err := os.ReadFile(path); err != nil || string(fresh) == string(data) {
		t.Fatalf("corrupt entry was not rewritten (err=%v)", err)
	}

	// Schema bump: different cache key, so the old entry is simply
	// never consulted and a fresh one is built alongside it.
	restore := arith.SetTableSchemaForTest("positlab-tables/v-test")
	defer restore()
	bumped := arith.TableCachePathForTest(dir, spec)
	if bumped == path {
		t.Fatal("schema bump did not change the cache key")
	}
	_ = arith.LoadOrBuildPositTablesForTest(dir, c)
	if d := arith.TableBuildCount() - b0; d != 3 {
		t.Fatalf("schema bump: %d builds total, want 3", d)
	}
	if _, err := os.Stat(bumped); err != nil {
		t.Fatalf("schema-bumped entry not persisted: %v", err)
	}
}

// TestTableCacheDirRegistry exercises the registry-level cache-dir
// wiring (SetTableCacheDir, as the positd -table-cache flag and the
// POSITLAB_TABLE_CACHE env use it): first use of a format persists its
// tables into the configured directory.
func TestTableCacheDirRegistry(t *testing.T) {
	dir := t.TempDir()
	if err := arith.SetTableCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := arith.SetTableCacheDir(""); err != nil {
			t.Fatal(err)
		}
	}()
	c := posit.MustNew(14, 2) // unique to this test
	f := arith.FastPosit(c)
	_ = f.Add(f.One(), f.One())
	path := arith.TableCachePathForTest(dir, arith.PositTableSpec(c))
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("registry did not persist tables for %s: %v", arith.PositTableSpec(c), err)
	}
}

// TestTableCacheDirUnusable exercises the degraded path: an unusable
// cache directory (here, a path routed through a regular file, so
// MkdirAll fails even for root) reports an error but leaves the
// registry serving in-memory tables with the disk cache disabled.
func TestTableCacheDirUnusable(t *testing.T) {
	base := t.TempDir()
	file := filepath.Join(base, "blocker")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(file, "cache")
	err := arith.SetTableCacheDir(bad)
	if err == nil {
		t.Fatalf("SetTableCacheDir(%q) succeeded on a path through a file", bad)
	}
	defer func() {
		if err := arith.SetTableCacheDir(""); err != nil {
			t.Fatal(err)
		}
	}()
	// The fallback must behave exactly like no cache: tables build in
	// memory and arithmetic works.
	c := posit.MustNew(13, 1) // unique to this test
	f := arith.FastPosit(c)
	if got := f.ToFloat64(f.Add(f.One(), f.One())); got != 2 {
		t.Fatalf("in-memory fallback: 1+1 = %g, want 2", got)
	}
	// And the registry must not have latched the unusable dir: a later
	// good dir works and persists.
	good := t.TempDir()
	if err := arith.SetTableCacheDir(good); err != nil {
		t.Fatal(err)
	}
	c2 := posit.MustNew(13, 2) // unique to this test
	f2 := arith.FastPosit(c2)
	_ = f2.Add(f2.One(), f2.One())
	if _, err := os.Stat(arith.TableCachePathForTest(good, arith.PositTableSpec(c2))); err != nil {
		t.Fatalf("cache dir set after a failed one did not persist: %v", err)
	}
}

// TestTable8MarshalRoundTrip checks the 8-bit table serialization used
// by the disk cache: unmarshal(marshal(t)) reproduces every entry of
// every op table.
func TestTable8MarshalRoundTrip(t *testing.T) {
	c := posit.MustNew(8, 2)
	tb, err := posit.NewTable8(c)
	if err != nil {
		t.Fatal(err)
	}
	tb2, err := posit.UnmarshalTable8(c, tb.MarshalBinary())
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 256; a++ {
		pa := posit.Bits(a)
		if tb.Sqrt(pa) != tb2.Sqrt(pa) {
			t.Fatalf("Sqrt(%#x) differs after round-trip", a)
		}
		for b := 0; b < 256; b++ {
			pb := posit.Bits(b)
			if tb.Add(pa, pb) != tb2.Add(pa, pb) ||
				tb.Sub(pa, pb) != tb2.Sub(pa, pb) ||
				tb.Mul(pa, pb) != tb2.Mul(pa, pb) ||
				tb.Div(pa, pb) != tb2.Div(pa, pb) {
				t.Fatalf("binary op (%#x,%#x) differs after round-trip", a, b)
			}
		}
	}

	if _, err := posit.UnmarshalTable8(c, tb.MarshalBinary()[:100]); err == nil {
		t.Error("truncated Table8 payload unmarshalled without error")
	}
}
