package arith

import (
	"math"

	"positlab/internal/bigfp"
	"positlab/internal/minifloat"
	"positlab/internal/posit"
)

// Fast value-domain formats.
//
// Every format in this study embeds exactly into float64 (at most 28
// significand bits, scales within ±496), so a Num can carry the
// *value* as float64 bits instead of the format's encoding. Operations
// then run as native float64 arithmetic followed by a table-driven
// re-rounding into the format's value set — roughly 6x faster than the
// integer-pipeline formats, which matters on the O(n³) factorizations.
//
// Correct rounding is preserved exactly. The hazard of computing
// through float64 is double rounding: the float64-rounded result can
// sit so close to a rounding boundary of the target format that it
// rounds differently than the exact result would. The rounder detects
// every such ambiguity conservatively — the discarded bits landing
// within one 53-bit ulp of the halfway pattern — and falls back to the
// exact integer pipeline for that operation. The ambiguous band has
// width 2^-(53-p) of an ulp, so fallbacks are vanishingly rare (~1e-7
// for posit32) and the fast path is bit-identical to the slow path,
// which differential tests assert.

// roundTables drives value-domain rounding for one format.
type roundTables struct {
	minScale int // scale of the smallest positive value
	maxScale int // scale of the largest finite value
	// fb[s-minScale]: explicit fraction bits at scale s. Negative
	// values mark scales where the cut reaches the exponent/regime
	// fields (posits near the ends, IEEE deep subnormals); those go
	// through the region tables below.
	fb []int8
	// Region tables, populated where fb <= 0: the bracketing
	// representable values around 2^s, the rounding midpoint between
	// them, and the parity of the lower pattern (for ties).
	down, up, mid []float64
	downOdd       []bool
	minPosV       float64 // smallest positive value
	maxFinV       float64 // largest finite value
	// maxFinBits is math.Float64bits(maxFinV), for the bit-domain
	// overflow check on the kernel hot path.
	maxFinBits uint64
	// posit: overflow clamps to maxFinV and underflow to minPosV;
	// IEEE: overflow rounds to +Inf and underflow to zero.
	ieee bool
}

// roundHot rounds x on the common path — finite, nonzero, in a scale
// region with explicit fraction bits, away from any double-rounding
// ambiguity, and not overflowing — entirely in integer registers.
// ok=false sends the caller to the full round/fallback path; whenever
// both succeed the result is bit-identical to round(x, false). This is
// the slice-kernel inner loop: one call-free rounding step instead of
// an interface dispatch plus the general rounder.
func (t *roundTables) roundHot(x float64) (float64, bool) {
	bits := math.Float64bits(x)
	abits := bits &^ (1 << 63)
	e := int(abits >> 52)
	// e == 0 covers zeros and float64 subnormals; e == 2047 covers
	// NaN/Inf; out-of-table scales cover under/overflow and the region
	// path. All bail to the general rounder.
	idx := e - 1023 - t.minScale
	if e == 0 || uint(idx) >= uint(len(t.fb)) {
		return 0, false
	}
	fbits := int(t.fb[idx])
	if fbits < 1 {
		return 0, false
	}
	drop := uint(52 - fbits)
	discarded := abits & (1<<drop - 1)
	half := uint64(1) << (drop - 1)
	// Ambiguous double-rounding band: discarded ∈ {half-1, half, half+1}.
	if discarded-(half-1) <= 2 {
		return 0, false
	}
	rbits := abits - discarded
	if discarded > half {
		// Round up; a mantissa carry flows into the exponent field and
		// lands exactly on the next power of two.
		rbits += 1 << drop
	}
	if rbits > t.maxFinBits {
		return 0, false // overflow: the general rounder clamps or infs
	}
	return math.Float64frombits(rbits | bits&(1<<63)), true
}

// round rounds a float64 to the format's value set with round-to-
// nearest-even in the format's own tie semantics. ok=false reports an
// ambiguous double-rounding case the caller must resolve — either by
// proving x is the exact result (re-round with exact=true; common for
// sums, whose ties are real) or through the integer pipeline.
func (t *roundTables) round(x float64, exact bool) (v float64, ok bool) {
	if x == 0 {
		if t.ieee {
			return x, true // IEEE keeps the zero's sign
		}
		return 0, true // posit has a single zero
	}
	if math.IsNaN(x) {
		return x, true
	}
	if math.IsInf(x, 0) {
		if t.ieee {
			return x, true
		}
		return math.NaN(), true // posit: infinite intermediates are NaR
	}
	neg := math.Signbit(x)
	a := math.Abs(x)
	bits := math.Float64bits(a)
	exp := int(bits>>52) - 1023
	if bits>>52 == 0 {
		exp = -1023 // subnormal float64: far below every format's range
	}

	if exp < t.minScale {
		// Below the smallest representable scale. The region entry at
		// minScale handles values just under minpos via its midpoint;
		// anything under half of minpos lands here.
		if t.ieee {
			// exp < minScale = emin-frac-1 means a < minsub/2, which
			// rounds to zero — unless a sits within an ulp of the
			// halfway point, which is ambiguous.
			if !exact && closeTo(a, t.minPosV/2) {
				return 0, false
			}
			return signed(0, neg), true
		}
		return signed(t.minPosV, neg), true // posits never round to zero
	}
	if exp > t.maxScale {
		if t.ieee {
			// Beyond 2^(maxScale+1): certainly infinity. Between
			// maxFin and 2^(maxScale+1) the region entry at maxScale
			// decides; exp > maxScale means at least 2^(maxScale+1),
			// which is past the overflow threshold.
			return signed(math.Inf(1), neg), true
		}
		return signed(t.maxFinV, neg), true
	}

	idx := exp - t.minScale
	fbits := int(t.fb[idx])
	if fbits >= 1 {
		drop := uint(52 - fbits)
		mant := bits & (1<<52 - 1)
		kept := mant >> drop
		discarded := mant & (1<<drop - 1)
		half := uint64(1) << (drop - 1)
		// Ambiguity: discarded within one 53-bit ulp of halfway. If x
		// is known exact, discarded == half is a genuine tie and the
		// neighbors are unambiguous.
		if !exact && discarded >= half-1 && discarded <= half+1 {
			return 0, false
		}
		if discarded > half || (discarded == half && kept&1 == 1) {
			kept++
		}
		v = math.Ldexp(float64((1<<uint(fbits))+kept), exp-fbits)
		if v > t.maxFinV {
			if t.ieee {
				v = math.Inf(1)
			} else {
				v = t.maxFinV
			}
		}
		return signed(v, neg), true
	}

	// Region path: zero or negative fraction bits — the value rounds
	// between down[s] and up[s] with the format's own midpoint.
	down, up, mid := t.down[idx], t.up[idx], t.mid[idx]
	if !exact && closeTo(a, mid) {
		return 0, false
	}
	switch {
	case a < mid:
		v = down
	case a > mid:
		v = up
	default: // exact tie: even pattern
		if t.downOdd[idx] {
			v = up
		} else {
			v = down
		}
	}
	if v > t.maxFinV {
		if t.ieee {
			v = math.Inf(1)
		} else {
			v = t.maxFinV
		}
	}
	if v == 0 && !t.ieee {
		v = t.minPosV
	}
	return signed(v, neg), true
}

func signed(v float64, neg bool) float64 {
	if neg {
		return -v
	}
	return v
}

// sumExact reports whether r = x + y held exactly in float64 (TwoSum
// residual is zero).
func sumExact(x, y, r float64) bool {
	bv := r - x
	return (x-(r-bv))+(y-bv) == 0
}

// mulExact reports whether r = x * y held exactly in float64.
func mulExact(x, y, r float64) bool {
	return math.FMA(x, y, -r) == 0
}

// divExact reports whether r = x / y held exactly in float64.
func divExact(x, y, r float64) bool {
	return math.FMA(r, y, -x) == 0
}

// sqrtExact reports whether r = sqrt(x) held exactly in float64.
func sqrtExact(x, r float64) bool {
	return math.FMA(r, r, -x) == 0
}

// closeTo reports |a-b| within one float64 ulp, via pattern distance
// (both positive finite).
func closeTo(a, b float64) bool {
	ba, bb := int64(math.Float64bits(a)), int64(math.Float64bits(b))
	d := ba - bb
	return d >= -1 && d <= 1
}

// --- fast posit ---

type fastPosit struct {
	c    posit.Config
	t    *roundTables
	kern *valueKernels
	// ek is the exhaustive lookup-table engine, set for formats of at
	// most 16 bits (see exact.go); nil means the roundTables path.
	ek *exactKernels
}

// FastPosit builds the value-domain implementation of a posit format.
// It is bit-compatible with Posit(c) in results; only the Num encoding
// differs (float64 value bits instead of posit patterns). 8-bit
// configurations get the fully tabulated ALU instead (posit.Table8);
// wider formats up to 16 bits get the table-driven rounding engine.
func FastPosit(c posit.Config) Format {
	if c.N() == 8 {
		return newTable8Format(c)
	}
	t := &roundTables{
		minScale: c.MinScale(),
		maxScale: c.MaxScale(),
		minPosV:  c.ToFloat64(c.MinPos()),
		maxFinV:  c.ToFloat64(c.MaxPos()),
	}
	t.maxFinBits = math.Float64bits(t.maxFinV)
	n := t.maxScale - t.minScale + 1
	t.fb = make([]int8, n)
	t.down = make([]float64, n)
	t.up = make([]float64, n)
	t.mid = make([]float64, n)
	t.downOdd = make([]bool, n)
	for s := t.minScale; s <= t.maxScale; s++ {
		i := s - t.minScale
		t.fb[i] = int8(rawFracBits(c, s))
		if t.fb[i] >= 1 {
			continue
		}
		// Largest posit <= 2^s.
		p := c.FromFloat64(math.Ldexp(1, s))
		if c.ToFloat64(p) > math.Ldexp(1, s) {
			p = c.Prev(p)
		}
		t.down[i] = c.ToFloat64(p)
		if p == c.MaxPos() {
			t.up[i] = math.Inf(1)
		} else {
			t.up[i] = c.ToFloat64(c.Next(p))
		}
		// Pattern-space midpoint: the (n+1)-bit posit 2p+1.
		mv := bigfp.PatternValue(c.N()+1, c.ES(), uint64(p)*2+1)
		t.mid[i], _ = mv.Float64()
		t.downOdd[i] = uint64(p)&1 == 1
	}
	fp := fastPosit{c: c, t: t}
	if c.N() <= 16 {
		// Every posit with n <= 16 is exact-product eligible: at most
		// 14 significand bits and |scale| <= 224 (see exact.go).
		fp.ek = &exactKernels{lt: lazyTables{build: func() *Tables { return tablesForPosit(c) }}}
	}
	// The kernel engine's rare-path closures capture fp by value; they
	// only use c and t, so the nil kern inside the copy is harmless.
	fp.kern = &valueKernels{t: t, add: fp.addVal, mul: fp.mulVal}
	return fp
}

// rawFracBits is FracBitsAtScale without the clamp at zero: negative
// values count exponent bits cut off by the regime.
func rawFracBits(c posit.Config, scale int) int {
	pow := 1 << uint(c.ES())
	k := scale / pow
	if scale%pow != 0 && scale < 0 {
		k--
	}
	var rlen int
	if k >= 0 {
		rlen = k + 2
	} else {
		rlen = -k + 1
	}
	return c.N() - 1 - rlen - c.ES()
}

func (p fastPosit) Name() string { return p.c.String() }

func (p fastPosit) FromFloat64(x float64) Num {
	// An external float64 is its own exact value: ties are genuine.
	v, _ := p.t.round(x, true)
	return n64(v)
}

func (p fastPosit) ToFloat64(a Num) float64 { return f64(a) }

// exact2 reruns a binary operation through the integer pipeline.
func (p fastPosit) exact2(op func(posit.Config, posit.Bits, posit.Bits) posit.Bits, a, b float64) Num {
	r := op(p.c, p.c.FromFloat64(a), p.c.FromFloat64(b))
	return n64(p.c.ToFloat64(r))
}

// addVal and mulVal are Add and Mul in the value domain (float64 in,
// float64 out); the Format methods and the slice kernels share them so
// both paths round identically by construction.
func (p fastPosit) addVal(x, y float64) float64 {
	r := x + y
	if v, ok := p.t.round(r, false); ok {
		return v
	}
	if sumExact(x, y, r) {
		v, _ := p.t.round(r, true)
		return v
	}
	return f64(p.exact2(posit.Config.Add, x, y))
}

func (p fastPosit) mulVal(x, y float64) float64 {
	r := x * y
	if v, ok := p.t.round(r, false); ok {
		return v
	}
	if mulExact(x, y, r) {
		v, _ := p.t.round(r, true)
		return v
	}
	return f64(p.exact2(posit.Config.Mul, x, y))
}

func (p fastPosit) Add(a, b Num) Num {
	if p.ek != nil {
		return n64(p.ek.add(f64(a), f64(b)))
	}
	return n64(p.addVal(f64(a), f64(b)))
}

func (p fastPosit) Sub(a, b Num) Num {
	x, y := f64(a), f64(b)
	if p.ek != nil {
		// Sub(a, b) = Add(a, -b): rounding is sign-symmetric and -y is
		// exact.
		return n64(p.ek.add(x, -y))
	}
	r := x - y
	if v, ok := p.t.round(r, false); ok {
		return n64(v)
	}
	if sumExact(x, -y, r) {
		v, _ := p.t.round(r, true)
		return n64(v)
	}
	return p.exact2(posit.Config.Sub, x, y)
}

func (p fastPosit) Mul(a, b Num) Num {
	if p.ek != nil {
		return n64(p.ek.mul(f64(a), f64(b)))
	}
	return n64(p.mulVal(f64(a), f64(b)))
}

// MulAdd fuses the pair in the value domain: product rounded, then sum
// rounded — bit-identical to Add(Mul(a, b), c) with one dispatch.
func (p fastPosit) MulAdd(a, b, c Num) Num {
	if p.ek != nil {
		return n64(p.ek.add(p.ek.mul(f64(a), f64(b)), f64(c)))
	}
	return n64(p.addVal(p.mulVal(f64(a), f64(b)), f64(c)))
}

func (p fastPosit) Div(a, b Num) Num {
	x, y := f64(a), f64(b)
	if p.ek != nil {
		return n64(p.ek.div(x, y))
	}
	if y == 0 {
		return n64(math.NaN()) // posit: division by zero is NaR
	}
	r := x / y
	if v, ok := p.t.round(r, false); ok {
		return n64(v)
	}
	if divExact(x, y, r) {
		v, _ := p.t.round(r, true)
		return n64(v)
	}
	return p.exact2(posit.Config.Div, x, y)
}

func (p fastPosit) Sqrt(a Num) Num {
	x := f64(a)
	if p.ek != nil {
		return n64(p.ek.sqrtVal(x))
	}
	if x < 0 {
		return n64(math.NaN())
	}
	r := math.Sqrt(x)
	if v, ok := p.t.round(r, false); ok {
		return n64(v)
	}
	if sqrtExact(x, r) {
		v, _ := p.t.round(r, true)
		return n64(v)
	}
	rp := p.c.Sqrt(p.c.FromFloat64(x))
	return n64(p.c.ToFloat64(rp))
}

func (p fastPosit) Neg(a Num) Num {
	v := -f64(a)
	if v == 0 {
		v = 0 // posit has a single (positive) zero
	}
	return n64(v)
}
func (p fastPosit) Zero() Num         { return n64(0) }
func (p fastPosit) One() Num          { return n64(1) }
func (p fastPosit) IsZero(a Num) bool { return f64(a) == 0 }
func (p fastPosit) Bad(a Num) bool    { return math.IsNaN(f64(a)) }
func (p fastPosit) Less(a, b Num) bool {
	return f64(a) < f64(b)
}
func (p fastPosit) Eps() float64 {
	return math.Ldexp(1, -(p.c.FracBitsAtScale(0) + 1))
}
func (p fastPosit) MaxValue() float64 { return p.t.maxFinV }

// Config exposes the posit configuration (see PositConfig).
func (p fastPosit) Config() posit.Config { return p.c }

// --- fast minifloat ---

type fastMini struct {
	f    minifloat.Format
	name string
	t    *roundTables
	kern *valueKernels
	// ek is the exhaustive lookup-table engine, set for eligible
	// formats of at most 16 bits (see exact.go); nil means the
	// roundTables path.
	ek *exactKernels
}

// exactEligibleMini reports whether an IEEE format qualifies for the
// table engine: tables must fit 2^16 entries and the product of any
// two format values must be a normal float64 (exactness of the kernel
// products; see exact.go).
func exactEligibleMini(f minifloat.Format) bool {
	frac := f.FracBits()
	return f.Width() <= 16 &&
		2*(frac+1) <= 53 &&
		2*f.Emax()+2 <= 1022 &&
		2*(f.Emin()-frac) >= -1020
}

// FastMini builds the value-domain implementation of an IEEE small
// format, bit-compatible in results with the minifloat integer
// pipeline.
func FastMini(f minifloat.Format, name string) Format {
	frac := f.FracBits()
	t := &roundTables{
		ieee:     true,
		minScale: f.Emin() - frac - 1, // scale of the sub-minsub tie region
		maxScale: f.Emax(),
		minPosV:  f.ToFloat64(f.MinSubnormal()),
		maxFinV:  f.MaxValue(),
	}
	t.maxFinBits = math.Float64bits(t.maxFinV)
	n := t.maxScale - t.minScale + 1
	t.fb = make([]int8, n)
	t.down = make([]float64, n)
	t.up = make([]float64, n)
	t.mid = make([]float64, n)
	t.downOdd = make([]bool, n)
	for s := t.minScale; s <= t.maxScale; s++ {
		i := s - t.minScale
		fb := frac
		if s < f.Emin() {
			fb = s - (f.Emin() - frac)
		}
		t.fb[i] = int8(fb)
		if fb >= 1 {
			continue
		}
		// down = largest representable <= 2^s; IEEE midpoints are
		// arithmetic means of adjacent representables.
		down := math.Ldexp(1, s)
		var downPat uint64
		switch {
		case fb == 0 && s >= f.Emin()-frac:
			downPat = uint64(f.FromFloat64(down))
		default: // s = emin-frac-1: below the smallest subnormal
			down = 0
			downPat = 0
		}
		up := t.minPosV
		if down != 0 {
			upPat := downPat + 1
			up = f.ToFloat64(minifloat.Bits(upPat))
		}
		t.down[i] = down
		t.up[i] = up
		t.mid[i] = (down + up) / 2
		t.downOdd[i] = downPat&1 == 1
	}
	fm := fastMini{f: f, name: name, t: t}
	if exactEligibleMini(f) {
		fm.ek = &exactKernels{lt: lazyTables{build: func() *Tables { return tablesForMini(f) }}}
	}
	fm.kern = &valueKernels{t: t, add: fm.addVal, mul: fm.mulVal}
	return fm
}

func (m fastMini) Name() string { return m.name }

func (m fastMini) FromFloat64(x float64) Num {
	// An external float64 is its own exact value: ties are genuine.
	v, _ := m.t.round(x, true)
	return n64(v)
}

func (m fastMini) ToFloat64(a Num) float64 { return f64(a) }

func (m fastMini) exact2(op func(minifloat.Format, minifloat.Bits, minifloat.Bits) minifloat.Bits, a, b float64) Num {
	r := op(m.f, m.f.FromFloat64(a), m.f.FromFloat64(b))
	return n64(m.f.ToFloat64(r))
}

// addVal and mulVal are Add and Mul in the value domain, shared by the
// Format methods and the slice kernels (see fastPosit).
func (m fastMini) addVal(x, y float64) float64 {
	r := x + y
	if v, ok := m.t.round(r, false); ok {
		return v
	}
	if sumExact(x, y, r) {
		v, _ := m.t.round(r, true)
		return v
	}
	return f64(m.exact2(minifloat.Format.Add, x, y))
}

func (m fastMini) mulVal(x, y float64) float64 {
	r := x * y
	if v, ok := m.t.round(r, false); ok {
		return v
	}
	if mulExact(x, y, r) {
		v, _ := m.t.round(r, true)
		return v
	}
	return f64(m.exact2(minifloat.Format.Mul, x, y))
}

func (m fastMini) Add(a, b Num) Num {
	if m.ek != nil {
		return n64(m.ek.add(f64(a), f64(b)))
	}
	return n64(m.addVal(f64(a), f64(b)))
}

func (m fastMini) Sub(a, b Num) Num {
	x, y := f64(a), f64(b)
	if m.ek != nil {
		return n64(m.ek.add(x, -y))
	}
	r := x - y
	if v, ok := m.t.round(r, false); ok {
		return n64(v)
	}
	if sumExact(x, -y, r) {
		v, _ := m.t.round(r, true)
		return n64(v)
	}
	return m.exact2(minifloat.Format.Sub, x, y)
}

func (m fastMini) Mul(a, b Num) Num {
	if m.ek != nil {
		return n64(m.ek.mul(f64(a), f64(b)))
	}
	return n64(m.mulVal(f64(a), f64(b)))
}

// MulAdd fuses the pair in the value domain (see fastPosit.MulAdd).
func (m fastMini) MulAdd(a, b, c Num) Num {
	if m.ek != nil {
		return n64(m.ek.add(m.ek.mul(f64(a), f64(b)), f64(c)))
	}
	return n64(m.addVal(m.mulVal(f64(a), f64(b)), f64(c)))
}

func (m fastMini) Div(a, b Num) Num {
	x, y := f64(a), f64(b)
	if m.ek != nil {
		return n64(m.ek.div(x, y))
	}
	r := x / y
	if v, ok := m.t.round(r, false); ok {
		return n64(v)
	}
	if divExact(x, y, r) {
		v, _ := m.t.round(r, true)
		return n64(v)
	}
	return m.exact2(minifloat.Format.Div, x, y)
}

func (m fastMini) Sqrt(a Num) Num {
	x := f64(a)
	if m.ek != nil {
		return n64(m.ek.sqrtVal(x))
	}
	r := math.Sqrt(x)
	if v, ok := m.t.round(r, false); ok {
		return n64(v)
	}
	if sqrtExact(x, r) {
		v, _ := m.t.round(r, true)
		return n64(v)
	}
	rp := m.f.Sqrt(m.f.FromFloat64(x))
	return n64(m.f.ToFloat64(rp))
}

func (m fastMini) Neg(a Num) Num     { return n64(-f64(a)) }
func (m fastMini) Zero() Num         { return n64(0) }
func (m fastMini) One() Num          { return n64(1) }
func (m fastMini) IsZero(a Num) bool { return f64(a) == 0 }
func (m fastMini) Bad(a Num) bool {
	v := f64(a)
	return math.IsNaN(v) || math.IsInf(v, 0)
}
func (m fastMini) Less(a, b Num) bool { return f64(a) < f64(b) }
func (m fastMini) Eps() float64 {
	return math.Ldexp(1, -(m.f.FracBits() + 1))
}
func (m fastMini) MaxValue() float64 { return m.t.maxFinV }
