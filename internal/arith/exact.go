package arith

import (
	"math"
	"sync"
)

// Exact table-driven kernels for the <=16-bit formats.
//
// For a format with at most 15 significand bits and scales well inside
// float64's range, the product of any two format values is *exact* in
// float64 (<=30 significand bits, exponents bounded), and every sum,
// quotient, or square root is correctly rounded to 53 bits — far more
// than the format keeps. The roundTables engine (fast.go) still treats
// results near a rounding boundary as ambiguous and falls back to the
// integer pipeline; with the Tables engine those cases resolve without
// ever leaving float64:
//
//   - Products are exact, so a result on a boundary is a genuine tie —
//     rounded to the even pattern inline (kept-bit parity equals
//     pattern parity, since the pattern of 2^s has a zero fraction
//     field whenever there are explicit fraction bits).
//   - Sums, quotients, and roots are correctly rounded in float64, and
//     every boundary of a <=16-bit format is itself a float64 value:
//     if the rounded result is not *exactly on* a boundary, the exact
//     result is provably on the same side (|exact-r| <= ½ulp(r) while
//     |r-B| >= 1 ulp), so rounding r rounds the exact result. A result
//     exactly on a boundary — one float64 pattern in 2^38 — resolves
//     by an exact residual: the TwoSum compensation for sums, an FMA
//     remainder for divisions and square roots (boundaryTie in
//     table.go).
//
// The upshot: the kernel loops below never call the bit-pattern
// pipeline. The common case is one dropByE load plus ~10 integer ops
// in registers; the rare cases (specials, region scales, boundary
// hits, overflow) go through Tables.roundFrom, which is still pure
// table lookups plus a binary search. Bit-identity with the scalar
// pipeline is asserted exhaustively in table_test.go.
//
// Eligibility (checked by exactEligibleMini and FastPosit): width <=
// 16 and the product of any two format values representable as a
// normal float64. Every supported posit with n <= 16 qualifies
// (significand <= 14 bits, |scale| <= 224); an IEEE format qualifies
// when 2·emax+2 and 2·(emin-frac) stay inside float64's normal
// exponent range.

// lazyTables defers the table build to first use and memoizes the
// result; the build itself is deduplicated process-wide by the
// registry in tablereg.go.
type lazyTables struct {
	once  sync.Once
	build func() *Tables
	tab   *Tables
}

func (l *lazyTables) get() *Tables {
	l.once.Do(func() { l.tab = l.build() })
	return l.tab
}

// exactKernels is the table-driven engine attached to a fast format.
type exactKernels struct {
	lt lazyTables
}

// valuePat returns the format pattern of a float64 that *is* a format
// value (the invariant of the value-domain Num encoding).
func (t *Tables) valuePat(x float64) uint16 {
	if x == 0 {
		if t.ieee && math.Signbit(x) {
			return t.signPat
		}
		return 0
	}
	if math.IsNaN(x) {
		return t.nanPat
	}
	if math.IsInf(x, 0) {
		if !t.ieee {
			return t.nanPat
		}
		return t.pattern(uint32(t.infPat), math.Signbit(x))
	}
	return t.pattern(t.exactPat(math.Float64bits(x)&^signBit64), math.Signbit(x))
}

// --- scalar operations ---
//
// Each op: native float64 arithmetic, then the inline rounder — look
// up the discard width for the result's exponent, split mantissa at
// the rounding boundary, resolve direction (and, for exact products,
// ties by parity), check overflow — falling back to Tables.roundFrom
// for everything dropByE maps to 0 (zeros, specials, region scales)
// plus boundary hits and overflow.

func (k *exactKernels) add(x, y float64) float64 {
	t := k.lt.get()
	r := x + y
	ab := math.Float64bits(r)
	sb := ab & signBit64
	ab ^= sb
	if drop := uint(t.dropByE[ab>>52]); drop != 0 {
		disc := ab & (1<<drop - 1)
		half := uint64(1) << (drop - 1)
		if disc != half {
			rb := ab - disc
			if disc > half {
				rb += 1 << drop
			}
			if rb <= t.maxFinBits {
				return math.Float64frombits(rb | sb)
			}
		}
	}
	return t.roundFrom(r, tieSum, x, y)
}

func (k *exactKernels) mul(x, y float64) float64 {
	t := k.lt.get()
	r := x * y
	ab := math.Float64bits(r)
	sb := ab & signBit64
	ab ^= sb
	if drop := uint(t.dropByE[ab>>52]); drop != 0 {
		disc := ab & (1<<drop - 1)
		half := uint64(1) << (drop - 1)
		rb := ab - disc
		// The product is exact, so a boundary hit is a genuine tie:
		// round to the even pattern via the kept-bit parity.
		if disc > half || (disc == half && ab&(1<<drop) != 0) {
			rb += 1 << drop
		}
		if rb <= t.maxFinBits {
			return math.Float64frombits(rb | sb)
		}
	}
	return t.roundFrom(r, tieExact, 0, 0)
}

func (k *exactKernels) div(x, y float64) float64 {
	t := k.lt.get()
	if x == 1 {
		// Reciprocals are fully tabulated (One is exactly 1 in the
		// value domain for every format).
		return t.decode[t.recip[t.valuePat(y)]]
	}
	r := x / y
	ab := math.Float64bits(r)
	sb := ab & signBit64
	ab ^= sb
	if drop := uint(t.dropByE[ab>>52]); drop != 0 {
		disc := ab & (1<<drop - 1)
		half := uint64(1) << (drop - 1)
		if disc != half {
			rb := ab - disc
			if disc > half {
				rb += 1 << drop
			}
			if rb <= t.maxFinBits {
				return math.Float64frombits(rb | sb)
			}
		}
	}
	return t.roundFrom(r, tieDiv, x, y)
}

// sqrtVal is a single table lookup: the sqrt table covers every
// pattern, including negatives and specials, with the pipeline's own
// results.
func (k *exactKernels) sqrtVal(x float64) float64 {
	t := k.lt.get()
	return t.decode[t.sqrt[t.valuePat(x)]]
}

// --- slice kernels ---
//
// The loops repeat the scalar rounding logic inline (no call on the
// hot path; the Go inliner refuses functions with fallback calls).
// Any deviation from add/mul/div above is a bug — table_test.go pins
// them together differentially.

func (k *exactKernels) dot(x, y []Num) Num {
	t := k.lt.get()
	drops, maxFin, ieee := &t.dropByE, t.maxFinBits, t.ieee
	y = y[:len(x)]
	s := 0.0
	for i := range x {
		xi, yi := f64(x[i]), f64(y[i])
		m := xi * yi
		ab := math.Float64bits(m)
		sb := ab & signBit64
		ab ^= sb
		if drop := uint(drops[ab>>52]); drop != 0 {
			disc := ab & (1<<drop - 1)
			half := uint64(1) << (drop - 1)
			rb := ab - disc
			if disc > half || (disc == half && ab&(1<<drop) != 0) {
				rb += 1 << drop
			}
			if rb <= maxFin {
				m = math.Float64frombits(rb | sb)
				goto sum
			}
		} else if ab == 0 {
			// Zero products dominate banded matrices stored dense;
			// skip the general rounder (posits have one zero).
			if !ieee {
				m = 0
			}
			goto sum
		}
		m = t.roundFrom(m, tieExact, 0, 0)
	sum:
		{
			r := s + m
			ab = math.Float64bits(r)
			sb = ab & signBit64
			ab ^= sb
			if drop := uint(drops[ab>>52]); drop != 0 {
				disc := ab & (1<<drop - 1)
				half := uint64(1) << (drop - 1)
				if disc != half {
					rb := ab - disc
					if disc > half {
						rb += 1 << drop
					}
					if rb <= maxFin {
						s = math.Float64frombits(rb | sb)
						continue
					}
				}
			} else if ab == 0 {
				if ieee {
					s = r
				} else {
					s = 0
				}
				continue
			}
			s = t.roundFrom(r, tieSum, s, m)
		}
	}
	return n64(s)
}

func (k *exactKernels) scale(alpha Num, x []Num) {
	t := k.lt.get()
	drops, maxFin, ieee := &t.dropByE, t.maxFinBits, t.ieee
	a := f64(alpha)
	for i := range x {
		m := a * f64(x[i])
		ab := math.Float64bits(m)
		sb := ab & signBit64
		ab ^= sb
		if drop := uint(drops[ab>>52]); drop != 0 {
			disc := ab & (1<<drop - 1)
			half := uint64(1) << (drop - 1)
			rb := ab - disc
			if disc > half || (disc == half && ab&(1<<drop) != 0) {
				rb += 1 << drop
			}
			if rb <= maxFin {
				x[i] = Num(rb | sb)
				continue
			}
		} else if ab == 0 {
			if ieee {
				x[i] = Num(sb)
			} else {
				x[i] = 0
			}
			continue
		}
		x[i] = n64(t.roundFrom(m, tieExact, 0, 0))
	}
}

// fma computes dst[i] = Add(Mul(a, x[i]), y[i]) — the shared body of
// AxpyKernel (dst = y), MulAddKernel, and TrailingUpdateKernel.
func (k *exactKernels) fma(a float64, x, y, dst []Num) {
	t := k.lt.get()
	drops, maxFin, ieee := &t.dropByE, t.maxFinBits, t.ieee
	y = y[:len(x)]
	dst = dst[:len(x)]
	for i := range x {
		m := a * f64(x[i])
		ab := math.Float64bits(m)
		sb := ab & signBit64
		ab ^= sb
		if drop := uint(drops[ab>>52]); drop != 0 {
			disc := ab & (1<<drop - 1)
			half := uint64(1) << (drop - 1)
			rb := ab - disc
			if disc > half || (disc == half && ab&(1<<drop) != 0) {
				rb += 1 << drop
			}
			if rb <= maxFin {
				m = math.Float64frombits(rb | sb)
				goto sum
			}
		} else if ab == 0 {
			if !ieee {
				m = 0
			}
			goto sum
		}
		m = t.roundFrom(m, tieExact, 0, 0)
	sum:
		{
			yi := f64(y[i])
			r := m + yi
			ab = math.Float64bits(r)
			sb = ab & signBit64
			ab ^= sb
			if drop := uint(drops[ab>>52]); drop != 0 {
				disc := ab & (1<<drop - 1)
				half := uint64(1) << (drop - 1)
				if disc != half {
					rb := ab - disc
					if disc > half {
						rb += 1 << drop
					}
					if rb <= maxFin {
						dst[i] = Num(rb | sb)
						continue
					}
				}
			} else if ab == 0 {
				if ieee {
					dst[i] = Num(sb)
				} else {
					dst[i] = 0
				}
				continue
			}
			dst[i] = n64(t.roundFrom(r, tieSum, m, yi))
		}
	}
}

func (k *exactKernels) matVec(rowPtr, col []int, val []Num, x, y []Num) {
	t := k.lt.get()
	drops, maxFin, ieee := &t.dropByE, t.maxFinBits, t.ieee
	for i := 0; i+1 < len(rowPtr); i++ {
		s := 0.0
		for idx := rowPtr[i]; idx < rowPtr[i+1]; idx++ {
			m := f64(val[idx]) * f64(x[col[idx]])
			ab := math.Float64bits(m)
			sb := ab & signBit64
			ab ^= sb
			if drop := uint(drops[ab>>52]); drop != 0 {
				disc := ab & (1<<drop - 1)
				half := uint64(1) << (drop - 1)
				rb := ab - disc
				if disc > half || (disc == half && ab&(1<<drop) != 0) {
					rb += 1 << drop
				}
				if rb <= maxFin {
					m = math.Float64frombits(rb | sb)
					goto sum
				}
			} else if ab == 0 {
				if !ieee {
					m = 0
				}
				goto sum
			}
			m = t.roundFrom(m, tieExact, 0, 0)
		sum:
			{
				r := s + m
				ab = math.Float64bits(r)
				sb = ab & signBit64
				ab ^= sb
				if drop := uint(drops[ab>>52]); drop != 0 {
					disc := ab & (1<<drop - 1)
					half := uint64(1) << (drop - 1)
					if disc != half {
						rb := ab - disc
						if disc > half {
							rb += 1 << drop
						}
						if rb <= maxFin {
							s = math.Float64frombits(rb | sb)
							continue
						}
					}
				} else if ab == 0 {
					if ieee {
						s = r
					} else {
						s = 0
					}
					continue
				}
				s = t.roundFrom(r, tieSum, s, m)
			}
		}
		y[i] = n64(s)
	}
}

// divK computes x[i] = Div(x[i], alpha) — the Cholesky row division.
func (k *exactKernels) divK(alpha Num, x []Num) {
	t := k.lt.get()
	drops, maxFin, ieee := &t.dropByE, t.maxFinBits, t.ieee
	a := f64(alpha)
	for i := range x {
		xi := f64(x[i])
		r := xi / a
		ab := math.Float64bits(r)
		sb := ab & signBit64
		ab ^= sb
		if drop := uint(drops[ab>>52]); drop != 0 {
			disc := ab & (1<<drop - 1)
			half := uint64(1) << (drop - 1)
			if disc != half {
				rb := ab - disc
				if disc > half {
					rb += 1 << drop
				}
				if rb <= maxFin {
					x[i] = Num(rb | sb)
					continue
				}
			}
		} else if ab == 0 {
			if ieee {
				x[i] = Num(sb)
			} else {
				x[i] = 0
			}
			continue
		}
		x[i] = n64(t.roundFrom(r, tieDiv, xi, a))
	}
}

// TablesOf returns the lookup-table engine behind f, building it on
// first use, and whether f has one (the <=16-bit fast formats).
// Callers like positd's /v1/convert use it for O(1) canonical
// encodings.
func TablesOf(f Format) (*Tables, bool) {
	switch v := f.(type) {
	case fastPosit:
		if v.ek != nil {
			return v.ek.lt.get(), true
		}
	case fastMini:
		if v.ek != nil {
			return v.ek.lt.get(), true
		}
	}
	return nil, false
}
