package arith_test

import (
	"sync"
	"testing"

	"positlab/internal/arith"
)

// TestAtomicOpCountsConcurrent drives one shared AtomicOpCounts from
// many goroutines — the exact shape of parallel scheduler jobs sharing
// a counter — and checks the tallies stay exact. Run under `make race`
// this doubles as the data-race proof for InstrumentAtomic.
func TestAtomicOpCountsConcurrent(t *testing.T) {
	const (
		workers = 8
		perOp   = 500
	)
	var counts arith.AtomicOpCounts
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := arith.InstrumentAtomic(arith.Float64, &counts)
			a, b := f.FromFloat64(3), f.FromFloat64(2)
			for i := 0; i < perOp; i++ {
				_ = f.Add(a, b)
				_ = f.Sub(a, b)
				_ = f.Mul(a, b)
				_ = f.Div(a, b)
				_ = f.Sqrt(a)
			}
		}()
	}
	wg.Wait()

	got := counts.Snapshot()
	want := arith.OpCounts{
		Add:  workers * perOp,
		Sub:  workers * perOp,
		Mul:  workers * perOp,
		Div:  workers * perOp,
		Sqrt: workers * perOp,
		Conv: workers * 2,
	}
	if got != want {
		t.Errorf("concurrent counts = %+v, want %+v", got, want)
	}
	if total := got.Total(); total != 5*workers*perOp {
		t.Errorf("Total() = %d, want %d", total, 5*workers*perOp)
	}
}

// TestInstrumentAtomicTransparent checks the wrapper never perturbs
// results even while racing: every goroutine's arithmetic must be
// bit-identical to the bare format's.
func TestInstrumentAtomicTransparent(t *testing.T) {
	var counts arith.AtomicOpCounts
	bare := arith.Float64
	wrapped := arith.InstrumentAtomic(bare, &counts)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			x := wrapped.FromFloat64(seed)
			y := wrapped.FromFloat64(seed / 3)
			if wrapped.Add(x, y) != bare.Add(x, y) ||
				wrapped.Mul(x, y) != bare.Mul(x, y) ||
				wrapped.Sqrt(x) != bare.Sqrt(x) {
				t.Error("instrumented results diverge from the bare format")
			}
		}(float64(w + 1))
	}
	wg.Wait()
}
