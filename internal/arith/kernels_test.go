package arith_test

import (
	"math"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/minifloat"
	"positlab/internal/posit"
)

// kernelFormats is the differential universe: every registered format
// (all fast value-domain implementations plus the native IEEE ones)
// and the slow integer-pipeline references, which exercise the generic
// scalar fallback of the kernel layer.
func kernelFormats(t *testing.T) map[string]arith.Format {
	fs := map[string]arith.Format{}
	for _, name := range arith.Names() {
		fs[name] = arith.MustByName(name)
	}
	fs["posit16e2-slow"] = arith.Posit(posit.Posit16e2)
	fs["posit32e2-slow"] = arith.Posit(posit.Posit32e2)
	fs["float16-slow"] = arith.Mini(minifloat.Float16, "Float16")
	fs["bfloat16-slow"] = arith.Mini(minifloat.BFloat16, "BFloat16")
	if len(fs) < 20 {
		t.Fatalf("expected the full registry, got %d formats", len(fs))
	}
	return fs
}

// kernelOperands builds a randomized operand slice in f that
// deliberately includes the exceptional patterns — zeros, NaR/NaN,
// ±Inf (via overflow in IEEE formats), max/min magnitudes — amid a
// log-uniform spread.
func kernelOperands(f arith.Format, n int, seed uint64) []arith.Num {
	x := seed
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	out := make([]arith.Num, n)
	for i := range out {
		r := next()
		switch r % 16 {
		case 0:
			out[i] = f.Zero()
		case 1:
			out[i] = f.FromFloat64(math.NaN()) // NaR / NaN
		case 2:
			out[i] = f.FromFloat64(math.Inf(1)) // +Inf or posit clamp
		case 3:
			out[i] = f.FromFloat64(-f.MaxValue())
		case 4:
			out[i] = f.FromFloat64(f.MaxValue() / 2)
		case 5:
			out[i] = f.One()
		default:
			e := int(r%200) - 100
			m := 1 + float64(r>>40)/float64(1<<24)
			v := math.Ldexp(m, e)
			if r&(1<<20) != 0 {
				v = -v
			}
			out[i] = f.FromFloat64(v)
		}
	}
	return out
}

// eqNum compares two results of the same format: exceptional values
// (NaR, NaN, ±Inf with matching sign) are compared by class — NaN
// payloads may legitimately differ between operand orders — everything
// else must match bit for bit.
func eqNum(f arith.Format, a, b arith.Num) bool {
	va, vb := f.ToFloat64(a), f.ToFloat64(b)
	if math.IsNaN(va) || math.IsNaN(vb) {
		return math.IsNaN(va) && math.IsNaN(vb)
	}
	return math.Float64bits(va) == math.Float64bits(vb)
}

func cloneNums(x []arith.Num) []arith.Num { return append([]arith.Num(nil), x...) }

// TestKernelsMatchScalarLoops asserts every kernel is bit-identical to
// the defining sequence of scalar Format operations — the pre-kernel
// inner loops of linalg and the solvers — on randomized slices laced
// with NaR/Inf/zero patterns, for every registered format and the slow
// reference implementations.
func TestKernelsMatchScalarLoops(t *testing.T) {
	n := 257 // odd, not a chunk multiple
	if testing.Short() {
		n = 65
	}
	for name, f := range kernelFormats(t) {
		t.Run(name, func(t *testing.T) {
			bk := arith.BulkOf(f)
			x := kernelOperands(f, n, 0x9E3779B97F4A7C15)
			y := kernelOperands(f, n, 0xD1B54A32D192ED03)
			alpha := f.FromFloat64(1.0 / 3.0)

			// Dot: s = Add(s, Mul(x[i], y[i])), left to right.
			want := f.Zero()
			for i := range x {
				want = f.Add(want, f.Mul(x[i], y[i]))
			}
			if got := bk.DotKernel(x, y); !eqNum(f, got, want) {
				t.Errorf("DotKernel = %g, scalar loop = %g", f.ToFloat64(got), f.ToFloat64(want))
			}

			// Axpy: y[i] = Add(y[i], Mul(alpha, x[i])).
			wy := cloneNums(y)
			for i := range x {
				wy[i] = f.Add(wy[i], f.Mul(alpha, x[i]))
			}
			gy := cloneNums(y)
			bk.AxpyKernel(alpha, x, gy)
			for i := range wy {
				if !eqNum(f, gy[i], wy[i]) {
					t.Fatalf("AxpyKernel[%d] = %g, scalar = %g", i, f.ToFloat64(gy[i]), f.ToFloat64(wy[i]))
				}
			}

			// Scale: x[i] = Mul(alpha, x[i]).
			wx := cloneNums(x)
			for i := range wx {
				wx[i] = f.Mul(alpha, wx[i])
			}
			gx := cloneNums(x)
			bk.ScaleKernel(alpha, gx)
			for i := range wx {
				if !eqNum(f, gx[i], wx[i]) {
					t.Fatalf("ScaleKernel[%d] = %g, scalar = %g", i, f.ToFloat64(gx[i]), f.ToFloat64(wx[i]))
				}
			}

			// MulAdd: dst[i] = Add(Mul(alpha, x[i]), y[i]), and the CG
			// form Add(y[i], Mul(alpha, x[i])) must agree with it (the
			// rewired p-update relies on that commutativity).
			wd := make([]arith.Num, n)
			for i := range x {
				wd[i] = f.Add(f.Mul(alpha, x[i]), y[i])
				cg := f.Add(y[i], f.Mul(alpha, x[i]))
				if !eqNum(f, wd[i], cg) {
					t.Fatalf("Add not commutative at %d: %g vs %g", i, f.ToFloat64(wd[i]), f.ToFloat64(cg))
				}
			}
			gd := make([]arith.Num, n)
			bk.MulAddKernel(alpha, x, y, gd)
			for i := range wd {
				if !eqNum(f, gd[i], wd[i]) {
					t.Fatalf("MulAddKernel[%d] = %g, scalar = %g", i, f.ToFloat64(gd[i]), f.ToFloat64(wd[i]))
				}
			}
			// Aliased dst (dst = x), as the CG direction update calls it.
			ga := cloneNums(x)
			bk.MulAddKernel(alpha, ga, y, ga)
			for i := range wd {
				if !eqNum(f, ga[i], wd[i]) {
					t.Fatalf("aliased MulAddKernel[%d] = %g, scalar = %g", i, f.ToFloat64(ga[i]), f.ToFloat64(wd[i]))
				}
			}

			// TrailingUpdate with the negated scale must reproduce the
			// Cholesky form Sub(w[i], Mul(alpha, x[i])) bit for bit.
			ww := cloneNums(y)
			for i := range x {
				ww[i] = f.Sub(ww[i], f.Mul(alpha, x[i]))
			}
			gw := cloneNums(y)
			bk.TrailingUpdateKernel(f.Neg(alpha), x, gw)
			for i := range ww {
				if !eqNum(f, gw[i], ww[i]) {
					t.Fatalf("TrailingUpdateKernel[%d] = %g, scalar Sub = %g", i, f.ToFloat64(gw[i]), f.ToFloat64(ww[i]))
				}
			}

			// MatVec on a synthetic CSR band: y[i] via the scalar
			// accumulation, including empty rows.
			rowPtr, col, val := bandCSR(f, n)
			wv := make([]arith.Num, n)
			for i := 0; i < n; i++ {
				sum := f.Zero()
				for idx := rowPtr[i]; idx < rowPtr[i+1]; idx++ {
					sum = f.Add(sum, f.Mul(val[idx], x[col[idx]]))
				}
				wv[i] = sum
			}
			gv := make([]arith.Num, n)
			bk.MatVecKernel(rowPtr, col, val, x, gv)
			for i := range wv {
				if !eqNum(f, gv[i], wv[i]) {
					t.Fatalf("MatVecKernel[%d] = %g, scalar = %g", i, f.ToFloat64(gv[i]), f.ToFloat64(wv[i]))
				}
			}
			// Sharded window: rows [lo, hi) through the same kernel
			// must equal the full pass (the parallel matvec contract).
			lo, hi := n/3, 2*n/3
			shard := make([]arith.Num, hi-lo)
			bk.MatVecKernel(rowPtr[lo:hi+1], col, val, x, shard)
			for i := range shard {
				if !eqNum(f, shard[i], wv[lo+i]) {
					t.Fatalf("windowed MatVecKernel[%d] = %g, scalar = %g", lo+i, f.ToFloat64(shard[i]), f.ToFloat64(wv[lo+i]))
				}
			}
		})
	}
}

// bandCSR builds a small tridiagonal-ish CSR with format-rounded
// values and a few deliberately empty rows.
func bandCSR(f arith.Format, n int) (rowPtr, col []int, val []arith.Num) {
	rowPtr = make([]int, n+1)
	for i := 0; i < n; i++ {
		rowPtr[i] = len(col)
		if i%11 == 7 {
			continue // empty row
		}
		for _, j := range []int{i - 1, i, i + 1} {
			if j < 0 || j >= n {
				continue
			}
			col = append(col, j)
			val = append(val, f.FromFloat64(float64((i*7+j*3)%13)-6))
		}
	}
	rowPtr[n] = len(col)
	return rowPtr, col, val
}

// TestMulAddMatchesComposition asserts Format.MulAdd is exactly
// Add(Mul(a, b), c) for every format, across boundary-heavy operands.
func TestMulAddMatchesComposition(t *testing.T) {
	for name, f := range kernelFormats(t) {
		t.Run(name, func(t *testing.T) {
			ops := kernelOperands(f, 48, 0xA5A5A5A5DEADBEEF)
			for _, a := range ops[:16] {
				for _, b := range ops[16:32] {
					for _, c := range ops[32:] {
						want := f.Add(f.Mul(a, b), c)
						got := f.MulAdd(a, b, c)
						if !eqNum(f, got, want) {
							t.Fatalf("MulAdd(%g,%g,%g) = %g, Add(Mul) = %g",
								f.ToFloat64(a), f.ToFloat64(b), f.ToFloat64(c),
								f.ToFloat64(got), f.ToFloat64(want))
						}
					}
				}
			}
		})
	}
}

// TestInstrumentedKernelCounts asserts the batched per-kernel counter
// updates equal the per-op tallies of the equivalent scalar loops, for
// both wrapper flavors.
func TestInstrumentedKernelCounts(t *testing.T) {
	n := 100
	base := arith.Posit16e2
	x := kernelOperands(base, n, 1)
	y := kernelOperands(base, n, 2)
	rowPtr, col, val := bandCSR(base, n)
	nnz := uint64(len(val))

	f, c := arith.Instrument(base)
	bk := arith.BulkOf(f)
	alpha := f.One()
	bk.DotKernel(x, y)
	bk.AxpyKernel(alpha, x, cloneNums(y))
	bk.ScaleKernel(alpha, cloneNums(x))
	bk.MulAddKernel(alpha, x, y, make([]arith.Num, n))
	bk.TrailingUpdateKernel(alpha, x, cloneNums(y))
	bk.MatVecKernel(rowPtr, col, val, x, make([]arith.Num, n))

	got := *c
	want := arith.OpCounts{
		Mul: uint64(5*n) + nnz,
		Add: uint64(4*n) + nnz,
	}
	if got != want {
		t.Errorf("instrumented kernel counts = %+v, want %+v", got, want)
	}

	var ac arith.AtomicOpCounts
	fa := arith.InstrumentAtomic(base, &ac)
	bka := arith.BulkOf(fa)
	bka.DotKernel(x, y)
	bka.MatVecKernel(rowPtr, col, val, x, make([]arith.Num, n))
	snap := ac.Snapshot()
	wantA := arith.OpCounts{Mul: uint64(n) + nnz, Add: uint64(n) + nnz}
	if snap != wantA {
		t.Errorf("atomic kernel counts = %+v, want %+v", snap, wantA)
	}
}
