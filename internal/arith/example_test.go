package arith_test

import (
	"fmt"

	"positlab/internal/arith"
)

func ExampleByName() {
	f, _ := arith.ByName("posit(32,2)")
	x := f.Div(f.One(), f.FromFloat64(3))
	fmt.Printf("%s %.12g\n", f.Name(), f.ToFloat64(x))
	// Output: Posit(32,2) 0.333333333954
}

func ExampleFormat() {
	// The same expression under three formats: posit(16,2) carries one
	// extra bit near 1.0 compared with Float16.
	for _, name := range []string{"float16", "posit16es2", "float64"} {
		f := arith.MustByName(name)
		third := f.Div(f.One(), f.FromFloat64(3))
		fmt.Printf("%s %v\n", f.Name(), f.ToFloat64(third))
	}
	// Output:
	// Float16 0.333251953125
	// Posit(16,2) 0.3333740234375
	// Float64 0.3333333333333333
}

func ExampleFromFloat64Clamped() {
	// The Table II loading rule: out-of-range entries clamp to the
	// largest finite value instead of overflowing.
	v := arith.FromFloat64Clamped(arith.Float16, 1e9)
	fmt.Println(arith.Float16.ToFloat64(v))
	// Output: 65504
}

func ExampleInstrument() {
	f, counts := arith.Instrument(arith.Posit16e2)
	s := f.Zero()
	for i := 1; i <= 4; i++ {
		s = f.Add(s, f.FromFloat64(float64(i)))
	}
	fmt.Println(f.ToFloat64(s), counts.Add, counts.Conv)
	// Output: 10 4 4
}
