// Package positlab is a from-scratch Go reproduction of Buoncristiani,
// Shah, Donofrio and Shalf, "Evaluating the Numerical Stability of
// Posit Arithmetic" (2020): a correctly rounded posit arithmetic
// library with configurable width and exponent size, software IEEE
// half-precision, linear-system solvers (CG, Cholesky, mixed-precision
// iterative refinement), the paper's matrix-rescaling strategies, a
// synthetic replica of its Matrix Market test suite, and a harness
// that regenerates every table and figure of its evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// substitutions made for offline reproduction, and EXPERIMENTS.md for
// paper-vs-measured results. The benchmarks in bench_test.go regenerate
// each experiment; the binaries under cmd/ expose them on the command
// line.
package positlab
