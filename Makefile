# Developer entry points. `make verify` is the repo's gate: vet,
# build, the full test suite, and a race-detector pass over the
# concurrent paths (the runner scheduler and the experiment suite's
# singleflight generation).

GO ?= go

.PHONY: verify vet build test race bench-runner

verify: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/runner/... ./internal/experiments/... ./internal/arith/...

# Reproduce BENCH_runner.json's timing comparison on a small subset
# (the checked-in file records the full 19-matrix suite).
bench-runner:
	$(GO) build -o /tmp/positlab-experiments ./cmd/experiments
	time /tmp/positlab-experiments -jobs 1 all >/dev/null
	time /tmp/positlab-experiments -jobs 4 all >/dev/null
