# Developer entry points. `make verify` is the repo's gate: vet,
# build, the positlint static-analysis suite, the full test suite, and
# a race-detector pass over every package.

GO ?= go

.PHONY: verify vet build lint test race serve chaos benchcheck bench-runner bench-lint bench-kernels bench-service bench-jobs bench-tables bench-shadow profile

verify: vet build lint test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# positlint: the repo-specific analyzers (precision laundering,
# deterministic output, lock hygiene, error discipline, panic
# discipline, registry consistency, plus the interprocedural rules:
# xprecision, durability, ctxprop, mutexio, unusedallow). The fact
# cache under .positlint-cache makes re-runs near-instant; delete the
# directory to force a cold analysis. See internal/lint.
lint:
	$(GO) run ./cmd/positlint -cache .positlint-cache

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Chaos: run every durable path's invariant suite under randomized
# deterministic fault schedules (internal/faultfs). Environment knobs:
#   POSITLAB_CHAOS_SEED=N    base seed (new schedules per base)
#   POSITLAB_CHAOS_N=N       schedules per package
#   POSITLAB_CHAOS_REPLAY=N  reproduce one printed failure seed
#   POSITLAB_CHAOS_DROP_SYNC=1  canary: tests MUST fail under it
chaos:
	$(GO) test -run TestChaos -count=1 -v ./internal/jobs/ ./internal/runner/ ./internal/arith/ ./internal/shadow/

# Re-assert the checked-in performance contracts (BENCH_shadow.json
# overhead ratios, BENCH_jobs.json throughput floor, BENCH_lint.json
# warm-cache speedup) at generous tolerances. See cmd/benchcheck.
benchcheck:
	$(GO) run ./cmd/benchcheck

# Reproduce BENCH_runner.json's timing comparison on a small subset
# (the checked-in file records the full 19-matrix suite).
bench-runner:
	$(GO) build -o /tmp/positlab-experiments ./cmd/experiments
	time /tmp/positlab-experiments -jobs 1 all >/dev/null
	time /tmp/positlab-experiments -jobs 4 all >/dev/null

# Reproduce BENCH_kernels.json: the slice-kernel hot loops (dot, CSR
# matvec, Cholesky) across formats.
bench-kernels:
	$(GO) test -run '^$$' -bench 'Dot1024|MatVec1000|Cholesky200' -benchtime 2s ./internal/linalg/

# Reproduce BENCH_lint.json: the linter's full-repo load, the per-run
# analysis cost, and the cold vs warm fact-cache comparison.
bench-lint:
	$(GO) test -run '^$$' -bench 'BenchmarkLoadRepo|BenchmarkRunRules|BenchmarkRepoCold|BenchmarkRepoWarm' -benchtime 3x ./internal/lint/

# Run the positd HTTP server on :8787 with a local disk cache for
# experiment results. See README "Serving" for the endpoints.
serve:
	$(GO) run ./cmd/positd -cache .cache/positd

# Reproduce the table-engine rows of BENCH_kernels.json: the 16-bit
# Cholesky/IR hot paths on the exhaustive-LUT fast path, the one-time
# table-build cost (with resident bytes per format), and the tabulated
# 8-bit scalar throughput.
bench-tables:
	$(GO) test -run '^$$' -bench 'Cholesky200(Float16|BFloat16|Posit16e1|Posit16e2)' -benchtime 2s ./internal/linalg/
	$(GO) test -run '^$$' -bench 'MixedIR' -benchtime 2s ./internal/solvers/
	$(GO) test -run '^$$' -bench 'TableBuild' ./internal/arith/

# Capture a CPU profile of the table-driven 16-bit Cholesky hot path
# and print the top functions. Inspect interactively with
# `go tool pprof /tmp/positlab-cholesky.prof`.
profile:
	$(GO) test -run '^$$' -bench 'Cholesky200Float16' -benchtime 2s \
		-cpuprofile /tmp/positlab-cholesky.prof ./internal/linalg/
	$(GO) tool pprof -top -nodecount 15 /tmp/positlab-cholesky.prof

# Reproduce BENCH_service.json: closed-loop req/s and latency for the
# serving layer (convert batches and warm cached experiments), plus
# the Go micro-benchmarks for the same paths.
bench-service:
	POSITLAB_BENCH_SERVICE=1 $(GO) test -run TestWriteServiceBenchReport ./internal/service/
	$(GO) test -run '^$$' -bench 'BenchmarkService' -benchtime 2s ./internal/service/

# Reproduce BENCH_shadow.json: shadow-wrapper overhead (off vs default
# sampling vs full measurement) on the Dot1024 and Cholesky200
# workloads, plus the raw Go micro-benchmarks for the same paths. The
# report test also asserts the overhead contract (sampled <= 2x,
# full <= 10x on cholesky200).
bench-shadow:
	POSITLAB_BENCH_SHADOW=1 $(GO) test -run TestWriteShadowBenchReport -v ./internal/shadow/
	$(GO) test -run '^$$' -bench 'Dot1024Posit16e2|Cholesky200Posit16e2' -benchtime 1s ./internal/shadow/

# Reproduce BENCH_jobs.json: submit-to-complete throughput of the
# durable job store (ephemeral / journaled / journaled-nosync) and
# journal replay latency at several backlog sizes, plus the raw Go
# micro-benchmarks for the same paths.
bench-jobs:
	POSITLAB_BENCH_JOBS=1 $(GO) test -run TestWriteJobsBenchReport ./internal/jobs/
	$(GO) test -run '^$$' -bench 'BenchmarkSubmitComplete|BenchmarkReplay' -benchtime 1s ./internal/jobs/
