package positlab_test

import (
	"math"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/experiments"
	"positlab/internal/linalg"
	"positlab/internal/matgen"
	"positlab/internal/posit"
	"positlab/internal/scaling"
	"positlab/internal/solvers"
)

// One benchmark per table/figure of the paper, on representative suite
// subsets so a single iteration stays in the hundreds of milliseconds.
// Run `cmd/experiments all` for the full 19-matrix regeneration.

var benchSubset = []string{"lund_b", "bcsstk01", "nos1"}

func benchOpt() experiments.Options {
	return experiments.Options{Matrices: benchSubset}
}

func BenchmarkTable1Suite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(benchOpt())
		if len(rows) != len(benchSubset) {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkFig3PrecisionMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig3(nil, 8)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig5Histogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hists := experiments.Fig5(benchOpt())
		if len(hists) != 2 {
			b.Fatal("want two histograms")
		}
	}
}

func BenchmarkFig6CG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6(benchOpt())
	}
}

func BenchmarkFig7CGScaled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig7(benchOpt())
	}
}

func BenchmarkFig8Cholesky(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig8(benchOpt())
	}
}

func BenchmarkFig9CholeskyScaled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9(benchOpt())
	}
}

func BenchmarkTable2MixedIR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(benchOpt())
	}
}

func BenchmarkTable3HighamIR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(benchOpt())
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig10(benchOpt())
	}
}

// --- ablations called out in DESIGN.md ---

// BenchmarkAblationQuire compares a dot product rounded per-operation
// against the deferred-rounding quire (§II-C), reporting both cost and
// the accuracy gap as custom metrics.
func BenchmarkAblationQuire(b *testing.B) {
	c := posit.Posit32e2
	n := 4096
	xs := make([]posit.Bits, n)
	ys := make([]posit.Bits, n)
	for i := 0; i < n; i++ {
		xs[i] = c.FromFloat64(math.Sin(float64(i)) * 1e3)
		ys[i] = c.FromFloat64(math.Cos(float64(i)) * 1e-3)
	}
	b.Run("per-op", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := c.Zero()
			for j := 0; j < n; j++ {
				s = c.Add(s, c.Mul(xs[j], ys[j]))
			}
			sinkPosit = s
		}
	})
	b.Run("quire", func(b *testing.B) {
		q := c.NewQuire()
		for i := 0; i < b.N; i++ {
			q.Reset()
			for j := 0; j < n; j++ {
				q.AddProduct(xs[j], ys[j])
			}
			sinkPosit = q.Round()
		}
	})
}

var sinkPosit posit.Bits

// BenchmarkAblationQuireCG compares full CG runs with round-per-op
// reductions against quire-fused reductions in posit(32,2): the
// configuration the paper excluded (§II-C), quantified.
func BenchmarkAblationQuireCG(b *testing.B) {
	m := experiments.Suite([]string{"bcsstk01"})[0]
	a := m.A.Clone()
	rhs := append([]float64(nil), m.B...)
	scaling.RescaleSystemCG(a, rhs)
	c := posit.Posit32e2
	cap := 10 * a.N
	b.Run("round-per-op", func(b *testing.B) {
		f := arith.Posit32e2
		an := a.ToFormat(f, false)
		bn := linalg.VecFromFloat64(f, rhs)
		iters := 0
		for i := 0; i < b.N; i++ {
			iters = solvers.CG(an, bn, 1e-5, cap).Iterations
		}
		b.ReportMetric(float64(iters), "cg-iters")
	})
	b.Run("quire-fused", func(b *testing.B) {
		q := solvers.NewCGQuire(c, a.RowPtr, a.Col, a.Val)
		pb := make([]posit.Bits, len(rhs))
		for i, v := range rhs {
			pb[i] = c.FromFloat64(v)
		}
		iters := 0
		for i := 0; i < b.N; i++ {
			iters = q.Solve(pb, 1e-5, cap).Iterations
		}
		b.ReportMetric(float64(iters), "cg-iters")
	})
}

// BenchmarkAblationES runs CG with posit32 across every exponent-size
// choice, the design axis of §V-A (es=2 vs es=3).
func BenchmarkAblationES(b *testing.B) {
	m := experiments.Suite([]string{"lund_b"})[0]
	for es := 0; es <= 4; es++ {
		f := arith.FastPosit(posit.MustNew(32, es))
		b.Run(f.Name(), func(b *testing.B) {
			an := m.A.ToFormat(f, false)
			bn := linalg.VecFromFloat64(f, m.B)
			iters := 0
			for i := 0; i < b.N; i++ {
				res := solvers.CG(an, bn, 1e-5, 10*m.A.N)
				iters = res.Iterations
			}
			b.ReportMetric(float64(iters), "cg-iters")
		})
	}
}

// BenchmarkAblationMu sweeps the Higham shift µ for posit(16,1) IR —
// the paper chose USEED after experimentation (§V-D2).
func BenchmarkAblationMu(b *testing.B) {
	m := experiments.Suite([]string{"bcsstk01"})[0]
	r := scaling.HighamEquilibrate(m.A, 1e-8, 100)
	f := arith.Posit16e1
	useed := scaling.MuFor(f)
	for _, mu := range []float64{1, useed, useed * useed, scaling.MuForFloat16(f.MaxValue())} {
		b.Run(muName(mu, useed), func(b *testing.B) {
			iters := 0
			for i := 0; i < b.N; i++ {
				res := solvers.MixedIR(m.A, m.B, f,
					solvers.IRScaling{R: r, Mu: mu}, solvers.IROptions{})
				if res.FactorFailed {
					iters = -1
				} else {
					iters = res.Iterations
				}
			}
			b.ReportMetric(float64(iters), "ir-iters")
		})
	}
}

func muName(mu, useed float64) string {
	switch mu {
	case 1:
		return "mu=1"
	case useed:
		return "mu=USEED"
	case useed * useed:
		return "mu=USEED^2"
	default:
		return "mu=pow4(0.1max)"
	}
}

// BenchmarkAblationPrecondVsRescale compares the paper's global
// power-of-two rescale against Jacobi preconditioning for posit(32,2)
// CG on a large-norm matrix — per-row scaling vs the paper's scalar.
func BenchmarkAblationPrecondVsRescale(b *testing.B) {
	m := experiments.Suite([]string{"bcsstk01"})[0]
	f := arith.Posit32e2
	cap := 10 * m.A.N
	b.Run("plain", func(b *testing.B) {
		an := m.A.ToFormat(f, false)
		bn := linalg.VecFromFloat64(f, m.B)
		iters := 0
		for i := 0; i < b.N; i++ {
			iters = solvers.CG(an, bn, 1e-5, cap).Iterations
		}
		b.ReportMetric(float64(iters), "cg-iters")
	})
	b.Run("jacobi-pcg", func(b *testing.B) {
		an := m.A.ToFormat(f, false)
		bn := linalg.VecFromFloat64(f, m.B)
		d := linalg.VecFromFloat64(f, m.A.Diag())
		iters := 0
		for i := 0; i < b.N; i++ {
			iters = solvers.PCG(an, d, bn, 1e-5, cap).Iterations
		}
		b.ReportMetric(float64(iters), "cg-iters")
	})
	b.Run("rescaled", func(b *testing.B) {
		a2 := m.A.Clone()
		b2 := append([]float64(nil), m.B...)
		scaling.RescaleSystemCG(a2, b2)
		an := a2.ToFormat(f, false)
		bn := linalg.VecFromFloat64(f, b2)
		iters := 0
		for i := 0; i < b.N; i++ {
			iters = solvers.CG(an, bn, 1e-5, cap).Iterations
		}
		b.ReportMetric(float64(iters), "cg-iters")
	})
}

// BenchmarkAblationGMRESIR compares plain and GMRES corrections on a
// matrix whose naive Float16 factorization is rough (§V-D2 remark).
func BenchmarkAblationGMRESIR(b *testing.B) {
	m := experiments.Suite([]string{"662_bus"})[0]
	f := arith.Float16
	b.Run("plain-ir", func(b *testing.B) {
		iters := 0
		for i := 0; i < b.N; i++ {
			iters = solvers.MixedIR(m.A, m.B, f, solvers.IRScaling{}, solvers.IROptions{}).Iterations
		}
		b.ReportMetric(float64(iters), "ir-iters")
	})
	b.Run("gmres-ir", func(b *testing.B) {
		iters := 0
		for i := 0; i < b.N; i++ {
			iters = solvers.MixedIRGMRES(m.A, m.B, f, solvers.IRScaling{}, solvers.IROptions{}, solvers.GMRESOptions{}).Iterations
		}
		b.ReportMetric(float64(iters), "ir-iters")
	})
}

// BenchmarkAblationLDLTShift probes the paper's explanation for
// rounding µ to a power of four — "Cholesky makes use of the
// square-root operator" — by factoring the same Higham-equilibrated
// matrix scaled by 2 (odd power) and by 4 (perfect square) with both
// Cholesky and square-root-free LDLᵀ, reporting the direct-solve
// backward error as a metric. If the explanation holds, Cholesky is
// the factorization that cares about the distinction.
func BenchmarkAblationLDLTShift(b *testing.B) {
	m := experiments.Suite([]string{"lund_b"})[0]
	r := scaling.HighamEquilibrate(m.A, 1e-8, 100)
	f := arith.Posit16e2
	for _, cfg := range []struct {
		name string
		mu   float64
	}{
		{"mu=8(pow2)", 8},
		{"mu=16(pow4)", 16},
	} {
		scaled := m.A.Clone()
		bb := append([]float64(nil), m.B...)
		scaled.ScaleSym(r)
		scaled.Scale(cfg.mu)
		// Consistent rhs: (µRAR)(R⁻¹x/µ·µ) — for the backward-error
		// metric only the scaled system itself matters.
		for i := range bb {
			bb[i] = m.B[i] * r[i] * cfg.mu
		}
		dense := scaled.ToDense()
		an := dense.ToFormat(f, true)
		bn := linalg.VecFromFloat64(f, bb)
		b.Run("cholesky/"+cfg.name, func(b *testing.B) {
			be := math.NaN()
			for i := 0; i < b.N; i++ {
				x, err := solvers.CholeskySolve(an, bn)
				if err != nil {
					b.Skip("factorization failed")
				}
				be = solvers.BackwardError(scaled, bb, linalg.VecToFloat64(f, x))
			}
			b.ReportMetric(be, "backward-err")
		})
		b.Run("ldlt/"+cfg.name, func(b *testing.B) {
			be := math.NaN()
			for i := 0; i < b.N; i++ {
				x, err := solvers.LDLTDirectSolve(an, bn)
				if err != nil {
					b.Skip("factorization failed")
				}
				be = solvers.BackwardError(scaled, bb, linalg.VecToFloat64(f, x))
			}
			b.ReportMetric(be, "backward-err")
		})
	}
}

// BenchmarkExtFFT regenerates the §VII FFT future-work experiment.
func BenchmarkExtFFT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ExtFFT()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkExtShock regenerates the §VII Sod shock-tube experiment.
func BenchmarkExtShock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ExtShock()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkExtBiCG regenerates the §VI BiCG iterate-growth comparison.
func BenchmarkExtBiCG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.ExtBiCG(benchOpt())
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkMatrixGeneration measures the calibrated suite generator.
func BenchmarkMatrixGeneration(b *testing.B) {
	tgt, _ := matgen.TargetByName("bcsstk01")
	for i := 0; i < b.N; i++ {
		m := matgen.Generate(tgt)
		if m.A.N != 48 {
			b.Fatal("bad matrix")
		}
	}
}
