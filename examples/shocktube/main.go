// Shock tube example: Sod's problem (the paper's §VII CFD candidate)
// run in several formats, with an ASCII rendering of the density
// profile and per-format error against the Float64 reference.
package main

import (
	"flag"
	"fmt"
	"strings"

	"positlab/internal/arith"
	"positlab/internal/shocktube"
)

func main() {
	cells := flag.Int("cells", 200, "grid cells")
	format := flag.String("format", "posit16es2", "format for the profile plot")
	flag.Parse()

	cfg := shocktube.Config{Cells: *cells}
	ref, steps, failed := shocktube.Run(arith.Float64, cfg)
	if failed {
		fmt.Println("float64 reference run failed")
		return
	}
	refRho := ref.Density()
	fmt.Printf("Sod shock tube, %d cells, t = 0.2 (%d steps)\n\n", *cells, steps)

	fmt.Println("density L2 error vs Float64:")
	for _, f := range []arith.Format{
		arith.Float32, arith.Posit32e2,
		arith.Float16, arith.BFloat16, arith.Posit16e1, arith.Posit16e2,
	} {
		s, _, failed := shocktube.Run(f, cfg)
		if failed {
			fmt.Printf("  %-12s FAILED\n", f.Name())
			continue
		}
		fmt.Printf("  %-12s %.3e\n", f.Name(), shocktube.RelErrorL2(s.Density(), refRho))
	}

	f, err := arith.ByName(*format)
	if err != nil {
		fmt.Println(err)
		return
	}
	s, _, failed := shocktube.Run(f, cfg)
	if failed {
		fmt.Printf("\n%s run failed\n", f.Name())
		return
	}
	fmt.Printf("\ndensity profile in %s (x: tube position, #: density 0..1):\n\n", f.Name())
	rho := s.Density()
	const rowsN = 16
	cols := 72
	grid := make([][]byte, rowsN)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for c := 0; c < cols; c++ {
		i := c * len(rho) / cols
		level := int(rho[i] * float64(rowsN-1) / 1.0)
		if level >= rowsN {
			level = rowsN - 1
		}
		for r := 0; r <= level; r++ {
			grid[rowsN-1-r][c] = '#'
		}
	}
	for _, row := range grid {
		fmt.Println(string(row))
	}
	fmt.Println(strings.Repeat("-", cols))
	fmt.Println("rarefaction        contact        shock ->")
}
