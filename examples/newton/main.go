// Newton example: root-finding in posit value types. Solves x³ = a by
// Newton's method entirely in P32 arithmetic and compares the
// converged root against float32 and float64 across magnitudes — a
// compact view of the golden zone's effect on a nonlinear kernel.
package main

import (
	"fmt"
	"math"

	"positlab/internal/posit"
)

// cbrtP32 runs Newton for f(x) = x³ - a in posit(32,2):
// x ← x - (x³ - a) / (3x²).
func cbrtP32(a float64) (root float64, iters int) {
	pa := posit.P32From(a)
	three := posit.P32From(3)
	x := posit.P32From(a / 3).Add(posit.P32From(1)) // crude positive start
	var last posit.P32
	for iters = 0; iters < 60; iters++ {
		x2 := x.Mul(x)
		f := x2.Mul(x).Sub(pa)
		df := three.Mul(x2)
		next := x.Sub(f.Div(df))
		if next.Bits() == x.Bits() || next.Bits() == last.Bits() {
			break
		}
		last = x
		x = next
	}
	return x.Float64(), iters
}

func cbrt32(a float64) float64 {
	x := float32(a/3) + 1
	var last float32
	for i := 0; i < 60; i++ {
		next := x - (x*x*x-float32(a))/(3*x*x)
		if next == x || next == last {
			break
		}
		last = x
		x = next
	}
	return float64(x)
}

func main() {
	fmt.Println("cube roots by Newton iteration, posit(32,2) vs float32")
	fmt.Println("(relative error against math.Cbrt in float64)")
	fmt.Println()
	fmt.Printf("%12s  %14s  %14s  %9s\n", "a", "posit(32,2)", "float32", "winner")
	for _, a := range []float64{1.0 / 64, 0.3, 2, 27, 1e4, 1e8, 1e12, 1e16, 1e20} {
		want := math.Cbrt(a)
		gotP, _ := cbrtP32(a)
		gotF := cbrt32(a)
		errP := math.Abs(gotP-want) / want
		errF := math.Abs(gotF-want) / want
		winner := "posit"
		switch {
		case errP > 1e-2 && (errF > 1e-2 || math.IsNaN(errF)):
			// Naive Newton from x0 ~ a/3 cubes its iterates: both
			// formats overflow their ranges long before convergence.
			winner = "both fail"
		case errF < errP:
			winner = "float32"
		case errF == errP:
			winner = "tie"
		}
		fmt.Printf("%12.4g  %14.3e  %14.3e  %9s\n", a, errP, errF, winner)
	}
	fmt.Println()
	fmt.Println("posits win while the root stays near the golden zone and lose")
	fmt.Println("precision once a (and x³ intermediates) leave it — the same")
	fmt.Println("magnitude-dependence the paper maps for linear solvers.")
}
