// Precision map example: the Fig. 3 "golden zone" picture as ASCII —
// worst-case decimal digits of accuracy per magnitude decade for posit
// and IEEE formats.
package main

import (
	"fmt"
	"math"
	"strings"

	"positlab/internal/minifloat"
	"positlab/internal/posit"
)

func main() {
	type curve struct {
		name string
		fn   func(float64) float64
	}
	curves := []curve{
		{"posit(32,2)", posit.Posit32e2.DecimalDigitsAt},
		{"posit(32,3)", posit.Posit32e3.DecimalDigitsAt},
		{"float32", minifloat.Float32.DecimalDigitsAt},
		{"posit(16,2)", posit.Posit16e2.DecimalDigitsAt},
		{"float16", minifloat.Float16.DecimalDigitsAt},
	}

	fmt.Println("worst-case decimal digits of accuracy by magnitude (Fig. 3)")
	fmt.Println()
	header := fmt.Sprintf("%8s", "x")
	for _, c := range curves {
		header += fmt.Sprintf("  %11s", c.name)
	}
	fmt.Println(header)
	fmt.Println(strings.Repeat("-", len(header)))
	for d := -12; d <= 12; d += 2 {
		x := math.Pow(10, float64(d))
		row := fmt.Sprintf("%8s", fmt.Sprintf("1e%+d", d))
		for _, c := range curves {
			row += fmt.Sprintf("  %11.2f", c.fn(x))
		}
		fmt.Println(row)
	}

	fmt.Println()
	fmt.Println("posit(32,2) vs float32 around the golden zone:")
	for d := -6; d <= 6; d++ {
		x := math.Pow(10, float64(d))
		p := posit.Posit32e2.DecimalDigitsAt(x)
		f := minifloat.Float32.DecimalDigitsAt(x)
		marker := ""
		if p > f {
			marker = strings.Repeat("+", int(math.Round((p-f)*4))) + " posit ahead"
		} else if f > p {
			marker = strings.Repeat("-", int(math.Round((f-p)*4))) + " float ahead"
		}
		fmt.Printf("  1e%+03d  posit %5.2f  float %5.2f  %s\n", d, p, f, marker)
	}
}
