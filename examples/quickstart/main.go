// Quickstart: posit arithmetic basics — formats, rounding, NaR,
// tapered precision, and the exact quire accumulator.
package main

import (
	"fmt"

	"positlab/internal/arith"
	"positlab/internal/posit"
)

func main() {
	// A posit format is Posit(n, es): n total bits, es exponent bits.
	p16 := posit.Posit16e2

	// Encode decimal values; arithmetic is correctly rounded.
	a := p16.FromFloat64(1.5)
	b := p16.FromFloat64(2.25)
	sum := p16.Add(a, b)
	fmt.Printf("1.5 + 2.25 = %g (pattern %#04x)\n", p16.ToFloat64(sum), uint64(sum))

	// Tapered precision: fraction bits depend on magnitude.
	for _, v := range []float64{1.0, 1e3, 1e6, 1e12} {
		x := p16.FromFloat64(v)
		fmt.Printf("posit(16,2) near %8.0e: %2d fraction bits, stored as %g\n",
			v, p16.FracBits(x), p16.ToFloat64(x))
	}

	// There are no infinities: 1/0 is NaR, and real values never
	// overflow — they clamp to maxpos.
	fmt.Printf("1/0 -> NaR? %v\n", p16.IsNaR(p16.Div(p16.One(), p16.Zero())))
	huge := p16.FromFloat64(1e30)
	fmt.Printf("1e30 clamps to maxpos = %g\n", p16.ToFloat64(huge))

	// The quire accumulates dot products exactly and rounds once.
	q := p16.NewQuire()
	big := p16.FromFloat64(1e6)
	tiny := p16.FromFloat64(0.25)
	q.AddProduct(big, big) // 1e12
	q.Add(tiny)            // + 0.25 (lost by round-per-op)
	q.SubProduct(big, big) // - 1e12
	fmt.Printf("quire (1e6*1e6 + 0.25 - 1e6*1e6) = %g\n", p16.ToFloat64(q.Round()))
	perOp := p16.Sub(p16.Add(p16.Mul(big, big), tiny), p16.Mul(big, big))
	fmt.Printf("round-per-op same expression    = %g\n", p16.ToFloat64(perOp))

	// The arith.Format interface runs any algorithm over any format.
	for _, f := range []arith.Format{arith.Float16, arith.Posit16e2, arith.Float32, arith.Posit32e2} {
		x := f.FromFloat64(1.0)
		third := f.Div(x, f.FromFloat64(3))
		fmt.Printf("%-12s 1/3 = %.12g (eps at 1 = %.3g)\n", f.Name(), f.ToFloat64(third), f.Eps())
	}
}
