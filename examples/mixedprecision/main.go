// Mixed-precision example: factor one Table I replica in a 16-bit
// format, refine in Float64, and show how Higham's scaling (Algorithm
// 4–5) rescues Float16 and boosts Posit16 — the paper's Table II vs
// Table III story on a single matrix.
package main

import (
	"flag"
	"fmt"

	"positlab/internal/arith"
	"positlab/internal/matgen"
	"positlab/internal/scaling"
	"positlab/internal/solvers"
)

func main() {
	name := flag.String("matrix", "bcsstk01", "Table I matrix name")
	flag.Parse()

	tgt, err := matgen.TargetByName(*name)
	if err != nil {
		fmt.Println(err)
		return
	}
	m := matgen.Generate(tgt)
	fmt.Printf("matrix %s: N=%d, ||A||2=%.3g, k(A)=%.3g\n",
		tgt.Name, tgt.N, tgt.Norm2, tgt.Cond)
	fmt.Printf("(Float16 max finite = 65504; posit(16,2) maxpos = %.3g)\n\n",
		arith.Posit16e2.MaxValue())

	formats := []arith.Format{arith.Float16, arith.Posit16e1, arith.Posit16e2}

	describe := func(res solvers.IRResult) string {
		switch {
		case res.FactorFailed:
			return "factorization failed"
		case !res.Converged:
			return fmt.Sprintf("1000+ iterations (stalled at backward error %.2e)", res.BackwardError)
		default:
			return fmt.Sprintf("%d refinement iterations (factor error %.2e)",
				res.Iterations, res.FactorError)
		}
	}

	fmt.Println("naive cast into 16-bit (overflow clamped to max):")
	for _, f := range formats {
		res := solvers.MixedIR(m.A, m.B, f, solvers.IRScaling{}, solvers.IROptions{})
		fmt.Printf("  %-12s %s\n", f.Name(), describe(res))
	}

	fmt.Println("\nHigham equilibration + format-aware mu:")
	r := scaling.HighamEquilibrate(m.A, 1e-8, 100)
	for _, f := range formats {
		mu := scaling.MuFor(f)
		res := solvers.MixedIR(m.A, m.B, f, solvers.IRScaling{R: r, Mu: mu}, solvers.IROptions{})
		fmt.Printf("  %-12s mu=%-6g %s\n", f.Name(), mu, describe(res))
	}
}
