// CG example: solve one Table I replica system with the conjugate
// gradient method in Float32 and Posit32, with and without the paper's
// power-of-two rescaling, and compare convergence.
package main

import (
	"flag"
	"fmt"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/matgen"
	"positlab/internal/scaling"
	"positlab/internal/solvers"
)

func main() {
	name := flag.String("matrix", "nos1", "Table I matrix name")
	flag.Parse()

	tgt, err := matgen.TargetByName(*name)
	if err != nil {
		fmt.Println(err)
		return
	}
	m := matgen.Generate(tgt)
	fmt.Printf("matrix %s: N=%d, ||A||2=%.3g, k(A)=%.3g\n\n",
		tgt.Name, tgt.N, tgt.Norm2, tgt.Cond)

	formats := []arith.Format{arith.Float64, arith.Float32, arith.Posit32e2, arith.Posit32e3}

	run := func(label string, a *linalg.Sparse, b []float64) {
		fmt.Println(label)
		for _, f := range formats {
			an := a.ToFormat(f, false)
			bn := linalg.VecFromFloat64(f, b)
			res := solvers.CG(an, bn, 1e-5, 10*a.N)
			status := "converged"
			if res.Failed {
				status = "FAILED (arithmetic exception)"
			} else if !res.Converged {
				status = "hit iteration cap"
			}
			fmt.Printf("  %-12s %5d iterations, backward error %.3e  [%s]\n",
				f.Name(), res.Iterations, solvers.BackwardError(a, b, res.X), status)
		}
		fmt.Println()
	}

	run("unscaled system:", m.A, m.B)

	a2 := m.A.Clone()
	b2 := append([]float64(nil), m.B...)
	s := scaling.RescaleSystemCG(a2, b2)
	fmt.Printf("rescaled by %g so that ||A||inf = %.4g ~ 2^10:\n", s, a2.NormInf())
	run("", a2, b2)
}
