#!/usr/bin/env bash
# positd-smoke.sh — shared harness for the positd CI smoke scenarios.
#
# Usage: scripts/positd-smoke.sh <basic|jobs-crash|diagnose> [port]
#
# Builds positd (unless POSITD_BIN points at an existing binary),
# starts it, waits for /healthz, runs the named scenario against a real
# TCP socket, and always tears the daemon down via an EXIT trap — a
# failing curl can no longer leak a daemon into the next CI step.
#
# Scenarios:
#   basic       health, convert, and metrics endpoints; graceful drain
#               (SIGTERM must exit 0).
#   jobs-crash  submit a checkpointing solve job against a journaled
#               store, SIGKILL the daemon mid-run, restart it on the
#               same journal, and poll the same job id to successful
#               completion. (Bit-identity of the resumed result is
#               asserted by the Go test TestCrashRecoveryBitIdentical;
#               this proves the shipped binary wires the same path.)
#   diagnose    fully-sampled shadowed CG solve through /v1/diagnose:
#               the report must carry solver progress, the accuracy
#               envelope, and non-empty per-op error histograms, and
#               the run must land in the shadow gauges of
#               /debug/metrics.
set -euo pipefail

SCENARIO=${1:?usage: positd-smoke.sh <basic|jobs-crash|diagnose> [port]}
PORT=${2:-8787}
ADDR=127.0.0.1:$PORT
BIN=${POSITD_BIN:-/tmp/positd}
PID=""

cleanup() {
  if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
    kill -KILL "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

wait_healthz() {
  for _ in $(seq 1 50); do
    if curl -sf "$ADDR/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "positd-smoke: $ADDR/healthz never came up" >&2
  return 1
}

start_positd() { # start_positd <extra args...>
  "$BIN" -addr "$ADDR" "$@" &
  PID=$!
  wait_healthz
}

stop_graceful() { # the graceful-drain contract: SIGTERM must exit 0
  kill -TERM "$PID"
  wait "$PID"
  PID=""
}

kill_hard() { # simulated process death, journal left as-is
  kill -KILL "$PID"
  wait "$PID" || true
  PID=""
}

scenario_basic() {
  start_positd
  curl -sf "$ADDR/healthz"
  curl -sf -X POST "$ADDR/v1/convert" \
    -d '{"from":"float64","to":"posit32es2","values":[1,2.5,3.14159]}'
  curl -sf "$ADDR/debug/metrics" >/dev/null
  stop_graceful
}

scenario_jobs_crash() {
  JDIR=$(mktemp -d)
  start_positd -jobs-dir "$JDIR" -quiet
  MM='%%MatrixMarket matrix coordinate real symmetric\n3 3 5\n1 1 2\n2 2 2\n3 3 2\n2 1 -1\n3 2 -1\n'
  ID=$(curl -sf -X POST "$ADDR/v1/jobs" \
    -d "{\"solve\":{\"matrix_market\":\"$MM\",\"solver\":\"cg\",\"format\":\"posit32es2\",\"tol\":1e-300,\"max_iter\":2000},\"checkpoint_every\":5}" |
    sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
  test -n "$ID"
  # Let at least one checkpoint land, then kill without mercy.
  for _ in $(seq 1 100); do
    CK=$(curl -sf "$ADDR/v1/jobs/$ID" | sed -n 's/.*"checkpoint_iter":\([0-9]*\).*/\1/p')
    [ "${CK:-0}" -ge 5 ] && break
    sleep 0.1
  done
  kill_hard
  start_positd -jobs-dir "$JDIR" -quiet
  STATE=""
  for _ in $(seq 1 300); do
    STATE=$(curl -sf "$ADDR/v1/jobs/$ID" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
    [ "$STATE" = succeeded ] && break
    sleep 0.1
  done
  [ "$STATE" = succeeded ]
  stop_graceful
}

scenario_diagnose() {
  start_positd -quiet
  REP=$(curl -sf -X POST "$ADDR/v1/diagnose" \
    -d '{"matrix":"bcsstk01","solver":"cg","format":"posit32es2","rescale":true,"sample_every":1}')
  echo "$REP" | grep -q '"matrix":"bcsstk01"'
  echo "$REP" | grep -q '"iterations":[1-9]'
  echo "$REP" | grep -q '"envelope":{'
  echo "$REP" | grep -q '"trace":\[{'
  echo "$REP" | grep -q '"rel_hist":\[{'
  OPS=$(echo "$REP" | sed -n 's/.*"total_ops":\([0-9]*\).*/\1/p')
  test "${OPS:-0}" -gt 0
  curl -sf "$ADDR/debug/metrics" | grep -q '"shadow":{"runs":1,"shadowed_ops":'"$OPS"
  stop_graceful
}

if [ ! -x "$BIN" ]; then
  go build -o "$BIN" ./cmd/positd
fi

case "$SCENARIO" in
basic) scenario_basic ;;
jobs-crash) scenario_jobs_crash ;;
diagnose) scenario_diagnose ;;
*)
  echo "positd-smoke: unknown scenario '$SCENARIO' (want basic, jobs-crash, diagnose)" >&2
  exit 2
  ;;
esac
echo "positd-smoke: $SCENARIO ok"
